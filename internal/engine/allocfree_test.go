package engine

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestSteadyStepAllocFree pins the tentpole property of this engine:
// once the intern table, stripe tables and entry pool are warm, the
// Step/Commit/Abort cycle performs zero heap allocations (DESIGN.md
// §14). Transaction ids cycle through a window so the pooled-entry
// reclaim/re-admit path is exercised, not just repeated steps on a
// fixed live set.
func TestSteadyStepAllocFree(t *testing.T) {
	s := NewStriped(Options{K: 7, StarvationAvoidance: true})
	lt := s.Latches()
	ids := make([]int32, 128)
	for i := range ids {
		ids[i] = s.ItemID(fmt.Sprintf("i%03d", i))
	}
	n := 0
	iter := func() {
		n++
		txn := 1 + n%512
		id := ids[n%len(ids)]
		stripe := lt.StripeOfID(id)
		lt.LockStripe(stripe)
		var v core.Verdict
		var blocker int
		if n&1 == 0 {
			v, blocker = s.StepReadID(txn, id)
		} else {
			v, blocker = s.StepWriteID(txn, id)
		}
		lt.UnlockStripe(stripe)
		if v == core.Reject {
			s.Abort(txn, blocker)
		} else if n%4 == 3 {
			s.Commit(txn)
		}
	}
	for i := 0; i < 5000; i++ {
		iter() // warm: intern table, stripe growth, pool population
	}
	if got := testing.AllocsPerRun(2000, iter); got != 0 {
		t.Fatalf("steady Step/Commit/Abort allocated %v/run, want 0", got)
	}
}

// TestEncodeAllocFree pins the §III-D-5 encode path (dependency
// assignment through the sink, including hot-item right-shifted slots)
// at zero steady-state allocations.
func TestEncodeAllocFree(t *testing.T) {
	s := NewStriped(Options{
		K:                   4,
		StarvationAvoidance: true,
		HotItems:            map[string]bool{"hot": true},
	})
	lt := s.Latches()
	hot := s.ItemID("hot")
	cold := s.ItemID("cold")
	n := 0
	iter := func() {
		n++
		txn := 1 + n%64
		for _, id := range []int32{hot, cold} {
			stripe := lt.StripeOfID(id)
			lt.LockStripe(stripe)
			v, blocker := s.StepWriteID(txn, id)
			lt.UnlockStripe(stripe)
			if v == core.Reject {
				s.Abort(txn, blocker)
				return
			}
		}
		s.Commit(txn)
	}
	for i := 0; i < 2000; i++ {
		iter()
	}
	if got := testing.AllocsPerRun(1000, iter); got != 0 {
		t.Fatalf("encode path allocated %v/run, want 0", got)
	}
}
