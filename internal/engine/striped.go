package engine

import (
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/explore/hook"
	"repro/internal/oplog"
)

// Striped is the fine-grained-locking implementation of the MT(k)
// scheduler of Algorithm 1: decision-for-decision equivalent to
// Scheduler (the differential suite in internal/sched asserts this op
// by op), but safe for concurrent use, with operations on disjoint
// items from different transactions proceeding in parallel.
//
// The locking scheme follows the paper's own decentralized protocol
// (Section V), which serializes only per-object vector accesses via
// ordered locking, and the Section VI remark that vector operations on
// different items proceed concurrently:
//
//  1. a hash-striped per-item LatchTable serializes the two accesses
//     that conflict on an item — reading/updating RT(x), WT(x) and the
//     access counts — with multi-item acquisitions (a deferred commit's
//     validate-and-publish) taking stripes in ascending order;
//  2. a per-transaction lock guards each timestamp vector and its
//     pin/done lifecycle bits; every step locks the (at most three)
//     transactions it touches — RT(x), WT(x) and the operating
//     transaction — in ascending id order;
//  3. a counter lock guards the lcount/ucount pair and the per-column
//     clock, taken last, for the duration of a kernel encode.
//
// The hierarchy is strict (latches, then transaction locks, then the
// counter lock), so no acquisition order can deadlock. Each Set(j, i)
// runs entirely under the locks of both vectors it inspects and
// mutates, so dependency encoding stays atomic and Lemmas 1-2 (defined
// elements are never overwritten; '<' is a strict partial order) carry
// over unchanged: any concurrent execution is equivalent to some serial
// sequence of Set transitions, which is exactly the coarse scheduler's
// regime.
type Striped struct {
	opts    Options
	k       int
	latches *core.LatchTable
	stripes []itemStripe

	// tmu guards the id -> entry map only; entry contents are guarded
	// by the per-entry lock. Never held while blocking on an entry lock.
	tmu  sync.RWMutex
	txns map[int]*txnEntry

	// cmu guards the counters and the column clock.
	cmu      sync.Mutex
	counters *LocalCounters
	clock    []int64

	// OnDecision, when non-nil, observes every Step decision while the
	// operation's item latches are still held, so for any single item
	// the observed order is the true decision order. Set it before
	// traffic flows. Stress tests use it to build serialization graphs.
	OnDecision func(core.Decision)
}

// itemStripe is the per-stripe slice of the scheduler's item-indexed
// state, guarded by the latch with the same index.
type itemStripe struct {
	rt     map[string]int
	wt     map[string]int
	access map[string]int
}

// txnEntry is one transaction's vector plus lifecycle state, guarded by
// its own lock.
type txnEntry struct {
	mu   sync.Mutex
	vec  *core.Vector
	pins int
	done bool
	// dead marks an entry reclaimed and removed from the map; a looker
	// that finds it set re-fetches (a fresh entry may exist by then).
	dead bool
}

// DefaultStripes is the latch-table width used by NewStriped.
const DefaultStripes = 128

// NewStriped returns a concurrent MT(k) scheduler with the default
// stripe count. Options are interpreted exactly as by NewScheduler.
func NewStriped(opts Options) *Striped {
	return NewStripedSize(opts, DefaultStripes)
}

// NewStripedSize returns a concurrent MT(k) scheduler with at least
// nStripes latch stripes.
func NewStripedSize(opts Options, nStripes int) *Striped {
	if opts.K < 1 {
		panic("engine: Options.K must be >= 1")
	}
	s := &Striped{
		opts:     opts,
		k:        opts.K,
		latches:  core.NewLatchTable(nStripes),
		txns:     make(map[int]*txnEntry),
		counters: NewLocalCounters(),
		clock:    make([]int64, opts.K),
	}
	s.stripes = make([]itemStripe, s.latches.Stripes())
	for i := range s.stripes {
		s.stripes[i] = itemStripe{
			rt:     make(map[string]int),
			wt:     make(map[string]int),
			access: make(map[string]int),
		}
	}
	// TS(0) = <0,*,...,*>: the virtual transaction T_0.
	t0 := core.NewVector(opts.K)
	t0.SetElem(1, 0)
	s.txns[0] = &txnEntry{vec: t0}
	return s
}

// K returns the vector size.
func (s *Striped) K() int { return s.k }

// Latches exposes the latch table so the runtime adapter can hold an
// operation's item latches across the protocol step AND the data
// access it orders (the atomicity the coarse adapter gets from its
// global mutex).
func (s *Striped) Latches() *core.LatchTable { return s.latches }

// entry returns the live entry for id, creating one on demand.
func (s *Striped) entry(id int) *txnEntry {
	s.tmu.RLock()
	e := s.txns[id]
	s.tmu.RUnlock()
	if e != nil {
		return e
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if e = s.txns[id]; e != nil {
		return e
	}
	e = &txnEntry{vec: core.NewVector(s.k)}
	s.txns[id] = e
	return e
}

// lockTxns locks the entries for the given ids in ascending id order
// (ids are deduplicated here), retrying from the map if any entry was
// reclaimed between lookup and lock. Returns the locked entries keyed
// by id and an unlock function.
func (s *Striped) lockTxns(ids ...int) (map[int]*txnEntry, func()) {
	sort.Ints(ids)
	uniq := ids[:0]
	for i, id := range ids {
		if i == 0 || id != uniq[len(uniq)-1] {
			uniq = append(uniq, id)
		}
	}
	for {
		es := make([]*txnEntry, len(uniq))
		for i, id := range uniq {
			es[i] = s.entry(id)
		}
		ok := true
		for i, e := range es {
			e.mu.Lock()
			if e.dead {
				for j := i; j >= 0; j-- {
					es[j].mu.Unlock()
				}
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		m := make(map[int]*txnEntry, len(uniq))
		for i, id := range uniq {
			m[id] = es[i]
		}
		return m, func() {
			for j := len(es) - 1; j >= 0; j-- {
				es[j].mu.Unlock()
			}
		}
	}
}

// Step schedules one atomic operation, acquiring the items' latches
// itself. Multi-item operations process their items in order; the
// first rejecting item rejects the whole operation.
func (s *Striped) Step(op oplog.Op) core.Decision {
	unlock := s.latches.Lock(op.Items...)
	defer unlock()
	return s.StepLocked(op)
}

// StepLocked is Step for callers that already hold the latches
// covering op.Items (the runtime adapter, which keeps them held across
// the subsequent data access).
func (s *Striped) StepLocked(op oplog.Op) core.Decision {
	var ignored []string
	d := core.Decision{Op: op, Verdict: core.Accept}
	for _, x := range op.Items {
		var v core.Verdict
		var blocker int
		if op.Kind == oplog.Read {
			v, blocker = s.stepItem(op.Txn, x, true)
		} else {
			v, blocker = s.stepItem(op.Txn, x, false)
		}
		if v == core.Reject {
			d = core.Decision{Op: op, Verdict: core.Reject, Blocker: blocker, Item: x}
			hook.Observe("engine.decision", x, int64(op.Txn), int64(v))
			if s.OnDecision != nil {
				s.OnDecision(d)
			}
			return d
		}
		if v == core.AcceptIgnored {
			ignored = append(ignored, x)
		}
	}
	if len(ignored) == len(op.Items) {
		d.Verdict = core.AcceptIgnored
	}
	d.IgnoredItems = ignored
	if len(op.Items) > 0 {
		hook.Observe("engine.decision", op.Items[0], int64(op.Txn), int64(d.Verdict))
	}
	if s.OnDecision != nil {
		s.OnDecision(d)
	}
	return d
}

// stepItem runs the read or write arm of Algorithm 1 for one item,
// with the item's latch held by the caller. It locks the (at most
// three) transactions involved, makes the decision, and updates the
// RT/WT indexes and pin counts before releasing them.
func (s *Striped) stepItem(i int, x string, read bool) (core.Verdict, int) {
	st := &s.stripes[s.latches.StripeOf(x)]
	st.access[x]++
	rt, wt := st.rt[x], st.wt[x]
	es, unlock := s.lockTxns(rt, wt, i)
	defer unlock()
	// A transaction issuing operations is live: a restarted incarnation
	// after Abort reactivates its (possibly reseeded) vector.
	es[i].done = false
	// maxHolder: j := RT(x) or WT(x), whichever timestamp is larger.
	j, ej := rt, es[rt]
	if rt != wt && s.vecLess(es[rt].vec, es[wt].vec) {
		j, ej = wt, es[wt]
	}
	if read {
		if s.setDep(j, i, ej, es[i], x) {
			s.repin(st, &st.rt, x, i, es)
			return core.Accept, 0
		}
		// Line 9: the read may slot between the most recent write and
		// the most recent read without becoming the most recent reader.
		if j == rt {
			if s.opts.RelaxedReadCheck {
				if s.setDep(wt, i, es[wt], es[i], x) {
					return core.Accept, 0
				}
			} else if wt != i && s.vecLess(es[wt].vec, es[i].vec) {
				return core.Accept, 0
			}
		}
		return core.Reject, j
	}
	if s.setDep(j, i, ej, es[i], x) {
		s.repin(st, &st.wt, x, i, es)
		return core.Accept, 0
	}
	// Thomas write rule: if TS(RT(x)) < TS(i) < TS(WT(x)), the write is
	// obsolete and can be ignored.
	if s.opts.ThomasWriteRule && j == wt && i != wt && s.vecLess(es[i].vec, es[wt].vec) &&
		s.setDep(rt, i, es[rt], es[i], x) {
		return core.AcceptIgnored, 0
	}
	return core.Reject, j
}

// vecLess reports a < b established, mirroring VectorTable.Less for
// already-locked vectors.
func (s *Striped) vecLess(a, b *core.Vector) bool {
	if a == b {
		return false
	}
	return a.Less(b)
}

// hot reports whether x qualifies for right-shifted encoding. The
// caller holds x's latch (access counts live under it).
func (s *Striped) hot(st *itemStripe, x string) bool {
	if s.opts.HotItems[x] {
		return true
	}
	return s.opts.HotThreshold > 0 && st.access[x] >= s.opts.HotThreshold
}

// setDep is procedure Set(j, i) with both entries locked; x (may be
// empty) is the item whose access created the dependency.
func (s *Striped) setDep(j, i int, ej, ei *txnEntry, x string) bool {
	if j == i {
		return true
	}
	rel, _ := ej.vec.Compare(ei.vec)
	if rel == core.Greater {
		return false
	}
	if rel == core.Less {
		if s.opts.Trace != nil {
			s.opts.Trace(core.Event{Kind: core.EvEstablished, J: j, I: i})
		}
		return true
	}
	shift := false
	if x != "" {
		shift = s.hot(&s.stripes[s.latches.StripeOf(x)], x)
	}
	if !s.encode(j, i, ej, ei, shift) {
		return false
	}
	if s.opts.Trace != nil {
		s.opts.Trace(core.Event{Kind: core.EvEncode, J: j, I: i})
	}
	return true
}

// assign sets element pos of id's (locked) vector and advances the
// column clock. The caller holds cmu.
func (s *Striped) assign(id int, e *txnEntry, pos int, val int64) {
	e.vec.SetElem(pos, val)
	if val > s.clock[pos-1] {
		s.clock[pos-1] = val
	}
	if s.opts.Trace != nil {
		s.opts.Trace(core.Event{Kind: core.EvAssign, Txn: id, Pos: pos, Val: val})
	}
}

// upper returns the value for a fresh "greater" element in column m
// (cmu held), mirroring VectorTable.upper.
func (s *Striped) upper(m int, floor int64) int64 {
	v := floor + 1
	if s.opts.MonotonicEncoding && s.clock[m-1]+1 > v {
		v = s.clock[m-1] + 1
	}
	return v
}

// stripedSink routes kernel assignments into the locked entries,
// advancing the clock and the trace hook. The encode holds cmu.
type stripedSink struct {
	s      *Striped
	j, i   int
	ej, ei *txnEntry
}

func (k stripedSink) Assign(side Side, pos int, val int64) {
	if side == SideJ {
		k.s.assign(k.j, k.ej, pos, val)
	} else {
		k.s.assign(k.i, k.ei, pos, val)
	}
}

func (k stripedSink) Upper(m int, floor int64) int64 { return k.s.upper(m, floor) }

// encode runs the kernel's Set(j, i) over the two locked entries. The
// element assignments and counter allocations run under cmu so the
// lcount/ucount interaction stays atomic.
func (s *Striped) encode(j, i int, ej, ei *txnEntry, shift bool) bool {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return Dep{
		J: j, I: i,
		VJ: ej.vec, VI: ei.vec,
		K:     s.k,
		Alloc: s.counters,
		Sink:  stripedSink{s: s, j: j, i: i, ej: ej, ei: ei},
		Shift: shift,
	}.Encode()
}

// repin moves the RT or WT index for x to txn, maintaining pin counts.
// The old holder is always among the locked entries (it was rt[x] or
// wt[x] when the step locked them).
func (s *Striped) repin(st *itemStripe, table *map[string]int, x string, txn int, es map[int]*txnEntry) {
	old := (*table)[x]
	if old == txn {
		return
	}
	(*table)[x] = txn
	es[txn].pins++
	if old == 0 {
		return
	}
	eo := es[old]
	eo.pins--
	s.maybeReclaim(old, eo)
}

// maybeReclaim frees the entry once the transaction is finished and no
// longer a most-recent read/write timestamp. The caller holds e.mu.
func (s *Striped) maybeReclaim(id int, e *txnEntry) {
	if id == 0 {
		return
	}
	if e.done && e.pins <= 0 && !e.dead {
		e.dead = true
		s.tmu.Lock()
		delete(s.txns, id)
		s.tmu.Unlock()
	}
}

// Commit marks transaction i finished; its vector storage is reclaimed
// as soon as it stops being a most-recent read/write timestamp.
func (s *Striped) Commit(i int) {
	es, unlock := s.lockTxns(i)
	defer unlock()
	e := es[i]
	e.done = true
	s.maybeReclaim(i, e)
}

// Abort discards transaction i; blocker is the Blocker of the
// rejecting Decision (0 for other causes). With StarvationAvoidance
// the vector is flushed and reseeded past the blocker, exactly as in
// Scheduler.Abort.
func (s *Striped) Abort(i, blocker int) {
	if i == 0 {
		return
	}
	if s.opts.StarvationAvoidance && blocker != 0 {
		es, unlock := s.lockTxns(i, blocker)
		b := es[blocker].vec.Elem(1)
		if b.Defined {
			seed := s.reseedFirst(i, es[i], b.V)
			unlock()
			if s.opts.Trace != nil {
				s.opts.Trace(core.Event{Kind: core.EvFlush, Txn: i, Val: seed})
			}
			return
		}
		e := es[i]
		e.done = true
		s.maybeReclaim(i, e)
		unlock()
		return
	}
	es, unlock := s.lockTxns(i)
	defer unlock()
	e := es[i]
	e.done = true
	s.maybeReclaim(i, e)
}

// reseedFirst mirrors VectorTable.ReseedFirst under the entry lock.
func (s *Striped) reseedFirst(i int, e *txnEntry, floor int64) int64 {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	seed := floor + 1
	if c := s.clock[0] + 1; c > seed {
		seed = c
	}
	if s.k == 1 {
		seed = s.counters.ReserveAtLeast(seed)
	}
	e.vec.Reset()
	s.assign(i, e, 1, seed)
	return seed
}

// ReadPendingWriter supports the runtime adapter's immediate-mode
// check ("read ordered after uncommitted writer"): with x's latch HELD
// by the caller, it reports whether x's most recent writer w (≠ i) is
// live per the callback and TS(i) < TS(w) is NOT established — the
// lost-update window the adapter must abort. The callback must not
// call back into this scheduler.
func (s *Striped) ReadPendingWriter(i int, x string, live func(int) bool) (blocker int, conflict bool) {
	st := &s.stripes[s.latches.StripeOf(x)]
	w := st.wt[x]
	if w == i || !live(w) {
		return 0, false
	}
	es, unlock := s.lockTxns(i, w)
	defer unlock()
	if !s.vecLess(es[i].vec, es[w].vec) {
		return w, true
	}
	return 0, false
}

// WritePendingWriter supports the runtime adapter's immediate-mode
// write guard: with x's latch HELD by the caller, it reports whether
// x's most recent writer w (≠ i) is still live per the callback. Two
// uncommitted accepted writes on one item are unpublishable under the
// publish-at-commit discipline — whichever commit order occurs, one of
// the two inverts the decided write order — so the adapter aborts the
// second writer regardless of how the vectors compare. The callback
// must not call back into this scheduler.
func (s *Striped) WritePendingWriter(i int, x string, live func(int) bool) (blocker int, conflict bool) {
	st := &s.stripes[s.latches.StripeOf(x)]
	w := st.wt[x]
	if w == 0 || w == i || !live(w) {
		return 0, false
	}
	return w, true
}

// Vector returns a copy of TS(i). Unknown transactions have the
// all-undefined vector.
func (s *Striped) Vector(i int) *core.Vector {
	es, unlock := s.lockTxns(i)
	defer unlock()
	return es[i].vec.Clone()
}

// RT returns RT(x) (0 if none), taking x's latch. Diagnostics only —
// callers already holding the latch must not use it.
func (s *Striped) RT(x string) int {
	unlock := s.latches.Lock(x)
	defer unlock()
	return s.stripes[s.latches.StripeOf(x)].rt[x]
}

// WT returns WT(x) (0 if none), taking x's latch. Diagnostics only.
func (s *Striped) WT(x string) int {
	unlock := s.latches.Lock(x)
	defer unlock()
	return s.stripes[s.latches.StripeOf(x)].wt[x]
}

// Counters returns the current (lcount, ucount) pair.
func (s *Striped) Counters() (lo, hi int64) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.counters.Counters()
}

// SeedCounters raises the counters to at least the given consumption
// watermarks in one atomic clamp; it is RaiseWatermarks under its
// historical name (the striped analogue of the coarse adapter's
// read-modify-write under its global mutex).
func (s *Striped) SeedCounters(lo, hi int64) { s.RaiseWatermarks(lo, hi) }

// Watermarks returns the monotone counter-consumption watermarks the
// WAL journals.
func (s *Striped) Watermarks() (lo, hi int64) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.counters.Watermarks()
}

// RaiseWatermarks lifts the counters to at least the given watermarks
// (recovery seeding) in one atomic raise-only clamp.
func (s *Striped) RaiseWatermarks(lo, hi int64) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	s.counters.Raise(lo, hi)
}

// LiveVectors returns the number of vectors currently held (including
// T_0), for storage-reclamation tests.
func (s *Striped) LiveVectors() int {
	s.tmu.RLock()
	defer s.tmu.RUnlock()
	return len(s.txns)
}

// Snapshot returns copies of all live timestamp vectors keyed by
// transaction id. Entries are locked one at a time, so the result is
// per-vector consistent; quiesce the scheduler for a global snapshot.
func (s *Striped) Snapshot() map[int]*core.Vector {
	s.tmu.RLock()
	ids := make([]int, 0, len(s.txns))
	for id := range s.txns {
		ids = append(ids, id)
	}
	s.tmu.RUnlock()
	out := make(map[int]*core.Vector, len(ids))
	for _, id := range ids {
		s.tmu.RLock()
		e := s.txns[id]
		s.tmu.RUnlock()
		if e == nil {
			continue
		}
		e.mu.Lock()
		if !e.dead {
			out[id] = e.vec.Clone()
		}
		e.mu.Unlock()
	}
	return out
}
