package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/explore/hook"
	"repro/internal/intern"
	"repro/internal/oplog"
)

// Striped is the fine-grained-locking implementation of the MT(k)
// scheduler of Algorithm 1: decision-for-decision equivalent to
// Scheduler (the differential suite in internal/sched asserts this op
// by op), but safe for concurrent use, with operations on disjoint
// items from different transactions proceeding in parallel.
//
// The locking scheme follows the paper's own decentralized protocol
// (Section V), which serializes only per-object vector accesses via
// ordered locking, and the Section VI remark that vector operations on
// different items proceed concurrently:
//
//  1. a hash-striped per-item LatchTable serializes the two accesses
//     that conflict on an item — reading/updating RT(x), WT(x) and the
//     access counts — with multi-item acquisitions (a deferred commit's
//     validate-and-publish) taking stripes in ascending order;
//  2. a per-transaction lock guards each timestamp vector and its
//     pin/done lifecycle bits; every step locks the (at most three)
//     transactions it touches — RT(x), WT(x) and the operating
//     transaction — in ascending id order;
//  3. a counter lock guards the lcount/ucount pair and the per-column
//     clock, taken last, for the duration of a kernel encode.
//
// The hierarchy is strict (latches, then transaction locks, then the
// counter lock), so no acquisition order can deadlock. Each Set(j, i)
// runs entirely under the locks of both vectors it inspects and
// mutates, so dependency encoding stays atomic and Lemmas 1-2 (defined
// elements are never overwritten; '<' is a strict partial order) carry
// over unchanged: any concurrent execution is equivalent to some serial
// sequence of Set transitions, which is exactly the coarse scheduler's
// regime.
//
// Memory discipline (DESIGN.md §14): items are interned to dense int32
// ids, so RT/WT/access state lives in per-stripe slices indexed by
// id/nStripes instead of string maps; transaction entries live in a
// chunked, atomically published table indexed by txn id and are
// recycled through a sync.Pool. A steady-state step — intern hit,
// latch, three entry locks, decision, repin — allocates nothing; the
// alloc gate in CI (make alloc-gate) holds it at 0 allocs/op.
type Striped struct {
	opts  Options
	k     int
	names *intern.Table

	latches *core.LatchTable
	stripes []itemStripe
	smask   int  // stripe index mask (stripe count - 1)
	nshift  uint // log2(stripe count): id >> nshift is the in-stripe index

	// tmu serializes txn-table growth and slot publication (create is
	// the only writer); lookups are lock-free loads of the spine. tmu
	// orders BEFORE the per-entry locks: create initializes a pooled
	// entry under its lock while holding tmu, and no path acquires tmu
	// while holding an entry lock (reclamation clears slots with a CAS,
	// not under tmu, precisely to keep this acyclic).
	tmu   sync.Mutex
	spine atomic.Pointer[[]*txnChunk]
	live  atomic.Int64 // published, unreclaimed entries (including T_0)
	pool  sync.Pool    // *txnEntry, vectors pre-sized to k
	// staleRetries counts lock-set retries that hit a reclaimed or
	// recycled entry (the generation check); the pooled-reuse stress
	// test asserts every stale access is caught here.
	staleRetries atomic.Int64

	// cmu guards the counters, the column clock, and the reusable
	// encode sink.
	cmu      sync.Mutex
	counters *LocalCounters
	clock    []int64
	sink     stripedSink

	// OnDecision, when non-nil, observes every Step decision while the
	// operation's item latches are still held, so for any single item
	// the observed order is the true decision order. Set it before
	// traffic flows. Stress tests use it to build serialization graphs.
	OnDecision func(core.Decision)
}

// itemStripe is the per-stripe slice of the scheduler's item-indexed
// state, guarded by the latch with the same index. An item with id
// interned as n lives at index n >> nshift of stripe n & smask (the
// id space is dense, so stripes grow in lockstep with the item count);
// the slices are grown only under the stripe's latch.
type itemStripe struct {
	rt     []int
	wt     []int
	access []int64
}

// ensure grows the stripe's tables to cover in-stripe index li (caller
// holds the stripe latch).
func (st *itemStripe) ensure(li int) {
	for li >= len(st.rt) {
		st.rt = append(st.rt, 0)
		st.wt = append(st.wt, 0)
		st.access = append(st.access, 0)
	}
}

// txnChunk is one fixed block of the transaction table. Chunks never
// move once published, so a slot pointer read is one atomic load.
const (
	txnChunkBits = 8
	txnChunkSize = 1 << txnChunkBits
	txnChunkMask = txnChunkSize - 1
)

type txnChunk struct {
	slots [txnChunkSize]atomic.Pointer[txnEntry]
}

// txnEntry is one transaction's vector plus lifecycle state, guarded by
// its own lock. Entries are pooled: reclamation marks the entry dead
// and returns it to the pool, and the next create re-tags it with a new
// id and bumps gen. A looker that locked a stale pointer detects the
// recycle because (id, dead) no longer match what it asked for.
type txnEntry struct {
	mu   sync.Mutex
	id   int         // current identity; valid while published
	gen  uint64      // incremented on every recycle (diagnostics, tests)
	dead atomic.Bool // set on reclaim; readable without the entry lock
	vec  *core.Vector
	pins int
	done bool
}

// lockedTxns is the fixed-capacity result of lockTxns: at most three
// distinct entries — RT(x), WT(x) and the acting transaction — locked
// in ascending id order. It lives on the caller's stack, so the
// steady-state step path allocates nothing.
type lockedTxns struct {
	ids [3]int
	es  [3]*txnEntry
	n   int
}

// get returns the locked entry for id (which must be one of the locked
// ids).
func (lt *lockedTxns) get(id int) *txnEntry {
	if lt.ids[0] == id {
		return lt.es[0]
	}
	if lt.n > 1 && lt.ids[1] == id {
		return lt.es[1]
	}
	return lt.es[2]
}

// unlock releases the locked entries in descending id order.
func (lt *lockedTxns) unlock() {
	for j := lt.n - 1; j >= 0; j-- {
		lt.es[j].mu.Unlock()
	}
}

// DefaultStripes is the latch-table width used by NewStriped.
const DefaultStripes = 128

// NewStriped returns a concurrent MT(k) scheduler with the default
// stripe count. Options are interpreted exactly as by NewScheduler.
func NewStriped(opts Options) *Striped {
	return NewStripedSize(opts, DefaultStripes)
}

// NewStripedSize returns a concurrent MT(k) scheduler with at least
// nStripes latch stripes and its own item-intern table.
func NewStripedSize(opts Options, nStripes int) *Striped {
	return newStriped(opts, nStripes, intern.New())
}

// NewStripedInterned returns a concurrent MT(k) scheduler that shares
// the given intern table (typically the backing store's, so scheduler
// and store agree on item ids and the runtime adapter can run the
// id-indexed fast path end to end).
func NewStripedInterned(opts Options, names *intern.Table) *Striped {
	return newStriped(opts, DefaultStripes, names)
}

func newStriped(opts Options, nStripes int, names *intern.Table) *Striped {
	if opts.K < 1 {
		panic("engine: Options.K must be >= 1")
	}
	s := &Striped{
		opts:     opts,
		k:        opts.K,
		names:    names,
		latches:  core.NewLatchTable(nStripes),
		counters: NewLocalCounters(),
		clock:    make([]int64, opts.K),
	}
	s.latches.BindInterner(names)
	s.stripes = make([]itemStripe, s.latches.Stripes())
	s.smask = s.latches.Stripes() - 1
	for 1<<s.nshift < s.latches.Stripes() {
		s.nshift++
	}
	k := opts.K
	s.pool.New = func() any { return &txnEntry{vec: core.NewVector(k)} }
	// TS(0) = <0,*,...,*>: the virtual transaction T_0.
	t0 := s.entry(0)
	t0.vec.SetElem(1, 0)
	return s
}

// K returns the vector size.
func (s *Striped) K() int { return s.k }

// Latches exposes the latch table so the runtime adapter can hold an
// operation's item latches across the protocol step AND the data
// access it orders (the atomicity the coarse adapter gets from its
// global mutex).
func (s *Striped) Latches() *core.LatchTable { return s.latches }

// Interner exposes the item-intern table backing this scheduler.
func (s *Striped) Interner() *intern.Table { return s.names }

// ItemID interns item and returns its dense id (the key for the *ID
// fast-path methods; also a valid index into the shared store when the
// scheduler was built with NewStripedInterned).
func (s *Striped) ItemID(item string) int32 { return s.names.ID(item) }

// StaleRetries returns how many lock-set acquisitions found a
// reclaimed or recycled entry and retried (the pooled-entry generation
// check; test observability).
func (s *Striped) StaleRetries() int64 { return s.staleRetries.Load() }

// lookup returns the published entry for id, or nil. Lock-free.
func (s *Striped) lookup(id int) *txnEntry {
	sp := s.spine.Load()
	if sp == nil {
		return nil
	}
	hi := id >> txnChunkBits
	if hi >= len(*sp) {
		return nil
	}
	ch := (*sp)[hi]
	if ch == nil {
		return nil
	}
	return ch.slots[id&txnChunkMask].Load()
}

// entry returns the live entry for id, creating (or recycling from the
// pool) one on demand.
func (s *Striped) entry(id int) *txnEntry {
	if e := s.lookup(id); e != nil && !e.dead.Load() {
		return e
	}
	return s.create(id)
}

// create publishes an entry for id under tmu. The spine is
// copy-on-write: chunks are installed by publishing a new chunk-pointer
// slice, so lock-free lookups only ever see immutable slices.
func (s *Striped) create(id int) *txnEntry {
	if id < 0 {
		panic("engine: negative transaction id")
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	hi := id >> txnChunkBits
	var chunks []*txnChunk
	if sp := s.spine.Load(); sp != nil {
		chunks = *sp
	}
	if hi >= len(chunks) || chunks[hi] == nil {
		n := len(chunks)
		if hi+1 > n {
			n = hi + 1
		}
		grown := make([]*txnChunk, n)
		copy(grown, chunks)
		if grown[hi] == nil {
			grown[hi] = &txnChunk{}
		}
		s.spine.Store(&grown)
		chunks = grown
	}
	slot := &chunks[hi].slots[id&txnChunkMask]
	if e := slot.Load(); e != nil && !e.dead.Load() {
		return e
	}
	e := s.pool.Get().(*txnEntry)
	// Initialize under the entry lock: a straggler holding a stale
	// pointer from the entry's previous identity may lock it and read
	// (id, dead) at any moment. If the previous identity is still
	// mid-reclaim, Get returned before that op's unlock and this block
	// waits for it — reclamation never acquires tmu, so holding it here
	// cannot deadlock.
	e.mu.Lock()
	e.id = id
	e.gen++
	e.dead.Store(false)
	e.done = false
	e.pins = 0
	e.vec.Reset()
	e.mu.Unlock()
	slot.Store(e)
	s.live.Add(1)
	return e
}

// lockTxns locks the entries for ids[:n] in ascending id order (ids
// are deduplicated here), retrying when an entry was reclaimed or
// recycled between lookup and lock — detected by the (id, dead)
// generation check, since a pooled entry that was re-published for a
// different transaction no longer carries the id it was looked up
// under. The result lives in the caller-provided lockedTxns.
func (s *Striped) lockTxns(lt *lockedTxns, ids [3]int, n int) {
	if n > 1 && ids[0] > ids[1] {
		ids[0], ids[1] = ids[1], ids[0]
	}
	if n == 3 {
		if ids[1] > ids[2] {
			ids[1], ids[2] = ids[2], ids[1]
		}
		if ids[0] > ids[1] {
			ids[0], ids[1] = ids[1], ids[0]
		}
	}
	m := 0
	for i := 0; i < n; i++ {
		if m == 0 || ids[i] != lt.ids[m-1] {
			lt.ids[m] = ids[i]
			m++
		}
	}
retry:
	for {
		for i := 0; i < m; i++ {
			lt.es[i] = s.entry(lt.ids[i])
		}
		for i := 0; i < m; i++ {
			e := lt.es[i]
			e.mu.Lock()
			if e.dead.Load() || e.id != lt.ids[i] {
				s.staleRetries.Add(1)
				for j := i; j >= 0; j-- {
					lt.es[j].mu.Unlock()
				}
				continue retry
			}
		}
		lt.n = m
		return
	}
}

// Step schedules one atomic operation, acquiring the items' latches
// itself. Multi-item operations process their items in order; the
// first rejecting item rejects the whole operation.
func (s *Striped) Step(op oplog.Op) core.Decision {
	unlock := s.latches.Lock(op.Items...)
	defer unlock()
	return s.StepLocked(op)
}

// StepLocked is Step for callers that already hold the latches
// covering op.Items (the runtime adapter, which keeps them held across
// the subsequent data access).
func (s *Striped) StepLocked(op oplog.Op) core.Decision {
	var ignored []string
	d := core.Decision{Op: op, Verdict: core.Accept}
	for _, x := range op.Items {
		v, blocker := s.stepItem(op.Txn, s.names.ID(x), op.Kind == oplog.Read)
		if v == core.Reject {
			d = core.Decision{Op: op, Verdict: core.Reject, Blocker: blocker, Item: x}
			hook.Observe("engine.decision", x, int64(op.Txn), int64(v))
			if s.OnDecision != nil {
				s.OnDecision(d)
			}
			return d
		}
		if v == core.AcceptIgnored {
			ignored = append(ignored, x)
		}
	}
	if len(ignored) == len(op.Items) {
		d.Verdict = core.AcceptIgnored
	}
	d.IgnoredItems = ignored
	if len(op.Items) > 0 {
		hook.Observe("engine.decision", op.Items[0], int64(op.Txn), int64(d.Verdict))
	}
	if s.OnDecision != nil {
		s.OnDecision(d)
	}
	return d
}

// StepReadID runs the read arm of Algorithm 1 for one interned item,
// with the item's latch held by the caller: the single-item fast path
// of StepLocked(oplog.R(txn, item)) with identical decision,
// observation and OnDecision behavior, but no Op construction —
// allocation-free on the steady path.
func (s *Striped) StepReadID(txn int, id int32) (core.Verdict, int) {
	v, blocker := s.stepItem(txn, id, true)
	s.observe(txn, id, oplog.Read, v, blocker)
	return v, blocker
}

// StepWriteID is the write-arm analogue of StepReadID.
func (s *Striped) StepWriteID(txn int, id int32) (core.Verdict, int) {
	v, blocker := s.stepItem(txn, id, false)
	s.observe(txn, id, oplog.Write, v, blocker)
	return v, blocker
}

// observe emits the decision exactly as StepLocked would for the
// single-item op: the explore-harness stamp first (the parity oracle's
// linearization point, still under the item latch), then OnDecision.
// The Decision value is only materialized when someone is listening.
func (s *Striped) observe(txn int, id int32, kind oplog.Kind, v core.Verdict, blocker int) {
	if hook.Enabled() {
		hook.Observe("engine.decision", s.names.Name(id), int64(txn), int64(v))
	}
	if s.OnDecision != nil {
		x := s.names.Name(id)
		d := core.Decision{
			Op:      oplog.Op{Txn: txn, Kind: kind, Items: []string{x}},
			Verdict: v,
		}
		switch v {
		case core.Reject:
			d.Blocker = blocker
			d.Item = x
		case core.AcceptIgnored:
			d.IgnoredItems = d.Op.Items
		}
		s.OnDecision(d)
	}
}

// stepItem runs the read or write arm of Algorithm 1 for one item,
// with the item's latch held by the caller. It locks the (at most
// three) transactions involved, makes the decision, and updates the
// RT/WT indexes and pin counts before releasing them.
func (s *Striped) stepItem(i int, id int32, read bool) (core.Verdict, int) {
	st := &s.stripes[int(uint32(id))&s.smask]
	li := int(id) >> s.nshift
	st.ensure(li)
	st.access[li]++
	rt, wt := st.rt[li], st.wt[li]
	var lt lockedTxns
	s.lockTxns(&lt, [3]int{rt, wt, i}, 3)
	defer lt.unlock()
	ei := lt.get(i)
	// A transaction issuing operations is live: a restarted incarnation
	// after Abort reactivates its (possibly reseeded) vector.
	ei.done = false
	// maxHolder: j := RT(x) or WT(x), whichever timestamp is larger.
	j, ej := rt, lt.get(rt)
	if rt != wt && s.vecLess(lt.get(rt).vec, lt.get(wt).vec) {
		j, ej = wt, lt.get(wt)
	}
	shift := s.hotID(st, li, id)
	if read {
		if s.setDep(j, i, ej, ei, shift) {
			s.repin(st.rt, li, i, &lt)
			return core.Accept, 0
		}
		// Line 9: the read may slot between the most recent write and
		// the most recent read without becoming the most recent reader.
		if j == rt {
			if s.opts.RelaxedReadCheck {
				if s.setDep(wt, i, lt.get(wt), ei, shift) {
					return core.Accept, 0
				}
			} else if wt != i && s.vecLess(lt.get(wt).vec, ei.vec) {
				return core.Accept, 0
			}
		}
		return core.Reject, j
	}
	if s.setDep(j, i, ej, ei, shift) {
		s.repin(st.wt, li, i, &lt)
		return core.Accept, 0
	}
	// Thomas write rule: if TS(RT(x)) < TS(i) < TS(WT(x)), the write is
	// obsolete and can be ignored.
	if s.opts.ThomasWriteRule && j == wt && i != wt && s.vecLess(ei.vec, lt.get(wt).vec) &&
		s.setDep(rt, i, lt.get(rt), ei, shift) {
		return core.AcceptIgnored, 0
	}
	return core.Reject, j
}

// vecLess reports a < b established, mirroring VectorTable.Less for
// already-locked vectors.
func (s *Striped) vecLess(a, b *core.Vector) bool {
	if a == b {
		return false
	}
	return a.Less(b)
}

// hotID reports whether the item qualifies for right-shifted encoding.
// The caller holds the item's latch (access counts live under it).
func (s *Striped) hotID(st *itemStripe, li int, id int32) bool {
	if len(s.opts.HotItems) > 0 && s.opts.HotItems[s.names.Name(id)] {
		return true
	}
	return s.opts.HotThreshold > 0 && int(st.access[li]) >= s.opts.HotThreshold
}

// setDep is procedure Set(j, i) with both entries locked; shift is the
// item's hot-encoding eligibility (precomputed under its latch).
func (s *Striped) setDep(j, i int, ej, ei *txnEntry, shift bool) bool {
	if j == i {
		return true
	}
	rel, _ := ej.vec.Compare(ei.vec)
	if rel == core.Greater {
		return false
	}
	if rel == core.Less {
		if s.opts.Trace != nil {
			s.opts.Trace(core.Event{Kind: core.EvEstablished, J: j, I: i})
		}
		return true
	}
	if !s.encode(j, i, ej, ei, shift) {
		return false
	}
	if s.opts.Trace != nil {
		s.opts.Trace(core.Event{Kind: core.EvEncode, J: j, I: i})
	}
	return true
}

// assign sets element pos of id's (locked) vector and advances the
// column clock. The caller holds cmu.
func (s *Striped) assign(id int, e *txnEntry, pos int, val int64) {
	e.vec.SetElem(pos, val)
	if val > s.clock[pos-1] {
		s.clock[pos-1] = val
	}
	if s.opts.Trace != nil {
		s.opts.Trace(core.Event{Kind: core.EvAssign, Txn: id, Pos: pos, Val: val})
	}
}

// upper returns the value for a fresh "greater" element in column m
// (cmu held), mirroring VectorTable.upper.
func (s *Striped) upper(m int, floor int64) int64 {
	v := floor + 1
	if s.opts.MonotonicEncoding && s.clock[m-1]+1 > v {
		v = s.clock[m-1] + 1
	}
	return v
}

// stripedSink routes kernel assignments into the locked entries,
// advancing the clock and the trace hook. The encode holds cmu, which
// also guards the scheduler's single reusable sink value: passing its
// address avoids re-boxing a fresh Sink interface per encode.
type stripedSink struct {
	s      *Striped
	j, i   int
	ej, ei *txnEntry
}

func (k *stripedSink) Assign(side Side, pos int, val int64) {
	if side == SideJ {
		k.s.assign(k.j, k.ej, pos, val)
	} else {
		k.s.assign(k.i, k.ei, pos, val)
	}
}

func (k *stripedSink) Upper(m int, floor int64) int64 { return k.s.upper(m, floor) }

// encode runs the kernel's Set(j, i) over the two locked entries. The
// element assignments and counter allocations run under cmu so the
// lcount/ucount interaction stays atomic.
func (s *Striped) encode(j, i int, ej, ei *txnEntry, shift bool) bool {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	s.sink = stripedSink{s: s, j: j, i: i, ej: ej, ei: ei}
	return Dep{
		J: j, I: i,
		VJ: ej.vec, VI: ei.vec,
		K:     s.k,
		Alloc: s.counters,
		Sink:  &s.sink,
		Shift: shift,
	}.Encode()
}

// repin moves the RT or WT index for the item (table[li], where table
// is the stripe's rt or wt slice) to txn, maintaining pin counts. The
// old holder is always among the locked entries (it was rt/wt when the
// step locked them).
func (s *Striped) repin(table []int, li int, txn int, lt *lockedTxns) {
	old := table[li]
	if old == txn {
		return
	}
	table[li] = txn
	lt.get(txn).pins++
	if old == 0 {
		return
	}
	eo := lt.get(old)
	eo.pins--
	s.maybeReclaim(old, eo)
}

// maybeReclaim recycles the entry once the transaction is finished and
// no longer a most-recent read/write timestamp. The caller holds e.mu.
// The published slot is cleared with a CAS (not under tmu — see the
// tmu comment) and the entry goes back to the pool; it may be locked
// by a recycler before the caller unlocks it, which is safe because
// create initializes entries under their lock.
func (s *Striped) maybeReclaim(id int, e *txnEntry) {
	if id == 0 {
		return
	}
	if e.done && (e.pins <= 0 || s.opts.UnsafeEagerReclaim) && !e.dead.Load() {
		e.dead.Store(true)
		e.gen++
		if sp := s.spine.Load(); sp != nil {
			hi := id >> txnChunkBits
			if hi < len(*sp) && (*sp)[hi] != nil {
				(*sp)[hi].slots[id&txnChunkMask].CompareAndSwap(e, nil)
			}
		}
		s.live.Add(-1)
		s.pool.Put(e)
	}
}

// Commit marks transaction i finished; its vector storage is reclaimed
// as soon as it stops being a most-recent read/write timestamp.
func (s *Striped) Commit(i int) {
	var lt lockedTxns
	s.lockTxns(&lt, [3]int{i, 0, 0}, 1)
	defer lt.unlock()
	e := lt.get(i)
	e.done = true
	s.maybeReclaim(i, e)
}

// Abort discards transaction i; blocker is the Blocker of the
// rejecting Decision (0 for other causes). With StarvationAvoidance
// the vector is flushed and reseeded past the blocker, exactly as in
// Scheduler.Abort.
func (s *Striped) Abort(i, blocker int) {
	if i == 0 {
		return
	}
	if s.opts.StarvationAvoidance && blocker != 0 {
		var lt lockedTxns
		s.lockTxns(&lt, [3]int{i, blocker, 0}, 2)
		b := lt.get(blocker).vec.Elem(1)
		if b.Defined {
			seed := s.reseedFirst(i, lt.get(i), b.V)
			lt.unlock()
			if s.opts.Trace != nil {
				s.opts.Trace(core.Event{Kind: core.EvFlush, Txn: i, Val: seed})
			}
			return
		}
		e := lt.get(i)
		e.done = true
		s.maybeReclaim(i, e)
		lt.unlock()
		return
	}
	var lt lockedTxns
	s.lockTxns(&lt, [3]int{i, 0, 0}, 1)
	defer lt.unlock()
	e := lt.get(i)
	e.done = true
	s.maybeReclaim(i, e)
}

// reseedFirst mirrors VectorTable.ReseedFirst under the entry lock.
func (s *Striped) reseedFirst(i int, e *txnEntry, floor int64) int64 {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	seed := floor + 1
	if c := s.clock[0] + 1; c > seed {
		seed = c
	}
	if s.k == 1 {
		seed = s.counters.ReserveAtLeast(seed)
	}
	e.vec.Reset()
	s.assign(i, e, 1, seed)
	return seed
}

// wtOf returns WT for an interned item id, 0 when the item has no
// state yet. Caller holds the item's latch.
func (s *Striped) wtOf(id int32) int {
	st := &s.stripes[int(uint32(id))&s.smask]
	li := int(id) >> s.nshift
	if li >= len(st.wt) {
		return 0
	}
	return st.wt[li]
}

// ReadPendingWriter supports the runtime adapter's immediate-mode
// check ("read ordered after uncommitted writer"): with x's latch HELD
// by the caller, it reports whether x's most recent writer w (≠ i) is
// live per the callback and TS(i) < TS(w) is NOT established — the
// lost-update window the adapter must abort. The callback must not
// call back into this scheduler.
func (s *Striped) ReadPendingWriter(i int, x string, live func(int) bool) (blocker int, conflict bool) {
	return s.ReadPendingWriterID(i, s.names.ID(x), live)
}

// ReadPendingWriterID is ReadPendingWriter keyed by interned item id.
func (s *Striped) ReadPendingWriterID(i int, id int32, live func(int) bool) (blocker int, conflict bool) {
	w := s.wtOf(id)
	if w == i || !live(w) {
		return 0, false
	}
	var lt lockedTxns
	s.lockTxns(&lt, [3]int{i, w, 0}, 2)
	defer lt.unlock()
	if !s.vecLess(lt.get(i).vec, lt.get(w).vec) {
		return w, true
	}
	return 0, false
}

// WritePendingWriter supports the runtime adapter's immediate-mode
// write guard: with x's latch HELD by the caller, it reports whether
// x's most recent writer w (≠ i) is still live per the callback. Two
// uncommitted accepted writes on one item are unpublishable under the
// publish-at-commit discipline — whichever commit order occurs, one of
// the two inverts the decided write order — so the adapter aborts the
// second writer regardless of how the vectors compare. The callback
// must not call back into this scheduler.
func (s *Striped) WritePendingWriter(i int, x string, live func(int) bool) (blocker int, conflict bool) {
	return s.WritePendingWriterID(i, s.names.ID(x), live)
}

// WritePendingWriterID is WritePendingWriter keyed by interned item id.
func (s *Striped) WritePendingWriterID(i int, id int32, live func(int) bool) (blocker int, conflict bool) {
	w := s.wtOf(id)
	if w == 0 || w == i || !live(w) {
		return 0, false
	}
	return w, true
}

// Vector returns a copy of TS(i). Unknown transactions have the
// all-undefined vector.
func (s *Striped) Vector(i int) *core.Vector {
	var lt lockedTxns
	s.lockTxns(&lt, [3]int{i, 0, 0}, 1)
	defer lt.unlock()
	return lt.get(i).vec.Clone()
}

// RT returns RT(x) (0 if none), taking x's latch. Diagnostics only —
// callers already holding the latch must not use it.
func (s *Striped) RT(x string) int {
	id := s.names.ID(x)
	i := s.latches.StripeOfID(id)
	s.latches.LockStripe(i)
	defer s.latches.UnlockStripe(i)
	st := &s.stripes[int(uint32(id))&s.smask]
	li := int(id) >> s.nshift
	if li >= len(st.rt) {
		return 0
	}
	return st.rt[li]
}

// WT returns WT(x) (0 if none), taking x's latch. Diagnostics only.
func (s *Striped) WT(x string) int {
	id := s.names.ID(x)
	i := s.latches.StripeOfID(id)
	s.latches.LockStripe(i)
	defer s.latches.UnlockStripe(i)
	return s.wtOf(id)
}

// Counters returns the current (lcount, ucount) pair.
func (s *Striped) Counters() (lo, hi int64) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.counters.Counters()
}

// SeedCounters raises the counters to at least the given consumption
// watermarks in one atomic clamp; it is RaiseWatermarks under its
// historical name (the striped analogue of the coarse adapter's
// read-modify-write under its global mutex).
func (s *Striped) SeedCounters(lo, hi int64) { s.RaiseWatermarks(lo, hi) }

// Watermarks returns the monotone counter-consumption watermarks the
// WAL journals.
func (s *Striped) Watermarks() (lo, hi int64) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.counters.Watermarks()
}

// RaiseWatermarks lifts the counters to at least the given watermarks
// (recovery seeding) in one atomic raise-only clamp.
func (s *Striped) RaiseWatermarks(lo, hi int64) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	s.counters.Raise(lo, hi)
}

// LiveVectors returns the number of vectors currently held (including
// T_0), for storage-reclamation tests.
func (s *Striped) LiveVectors() int { return int(s.live.Load()) }

// Snapshot returns copies of all live timestamp vectors keyed by
// transaction id. Entries are locked one at a time, so the result is
// per-vector consistent; quiesce the scheduler for a global snapshot.
func (s *Striped) Snapshot() map[int]*core.Vector {
	out := make(map[int]*core.Vector)
	sp := s.spine.Load()
	if sp == nil {
		return out
	}
	for hi, ch := range *sp {
		if ch == nil {
			continue
		}
		for lo := range ch.slots {
			e := ch.slots[lo].Load()
			if e == nil {
				continue
			}
			want := hi<<txnChunkBits | lo
			e.mu.Lock()
			if !e.dead.Load() && e.id == want {
				out[want] = e.vec.Clone()
			}
			e.mu.Unlock()
		}
	}
	return out
}
