// Package engine is the protocol kernel shared by every scheduler in
// the multidimensional-timestamp family: one implementation of
// Algorithm 1's vector table, the Set(j, i) dependency encoding, the
// lcount/ucount counter-column management, the starvation fix and the
// Thomas-write-rule handling — parameterized by a ColumnAllocator
// (where counter-column values come from) and a locking discipline
// (the caller-serialized coarse Scheduler vs. the latch-striped
// Striped). MT(k), MT(k+), MT(k1,k2) and DMT(k) are all thin
// disciplines over this package; none of them re-implements
// validation or counter allocation.
package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/oplog"
)

// Options configures an MT(k) scheduler.
type Options struct {
	// K is the timestamp vector size (k >= 1). Per Theorem 3, k = 2q-1
	// suffices for transactions of at most q operations.
	K int
	// ThomasWriteRule accepts-and-ignores obsolete writes when
	// TS(RT(x)) < TS(i) < TS(WT(x)) instead of aborting (Section III-D-6c).
	ThomasWriteRule bool
	// StarvationAvoidance applies the Section III-D-4 fix on Abort: the
	// vector is flushed and its first element seeded to TS(blocker,1)+1 so
	// the restarted incarnation runs after its blocker.
	StarvationAvoidance bool
	// RelaxedReadCheck replaces the line-9 condition TS(WT(x)) < TS(i)
	// with Set(WT(x), i), allowing higher concurrency (Section III-D-2
	// closing remark).
	RelaxedReadCheck bool
	// HotItems marks items whose dependencies are encoded near the right
	// end of the vectors (optimized encoding, Section III-D-5).
	HotItems map[string]bool
	// HotThreshold, when > 0, dynamically treats an item as hot once its
	// access count reaches the threshold.
	HotThreshold int
	// MonotonicEncoding assigns Lamport-style (column-monotonic) element
	// values instead of the paper's relative TS(j,m)+1 values. This is an
	// engineering ablation: it eliminates the spurious rejections caused
	// by relative values meeting deeper conflict chains, at the cost of
	// the Example 1 behaviour (equal elements for unordered transactions)
	// and therefore of some of the protocol's late-binding concurrency.
	MonotonicEncoding bool
	// Trace, when non-nil, receives an Event for every element assignment,
	// dependency encoding and flush.
	Trace func(core.Event)
	// UnsafeEagerReclaim injects a seeded pooled-entry lifecycle bug
	// into the striped engine for the schedule-exploration harness: a
	// finished transaction's entry is reclaimed even while it is still
	// pinned as an item's most-recent read/write timestamp, so a later
	// conflict test against that item recreates the transaction with an
	// empty vector and decides against the wrong timestamp. Exists only
	// so internal/explore can pin the reclamation interleaving as a
	// regression trace (testdata/eager_reclaim.trace); never set it.
	UnsafeEagerReclaim bool
}

// Scheduler is the MT(k) concurrency controller of Algorithm 1 under
// the coarse locking discipline: it is not safe for concurrent use, the
// caller serializes access to it (the paper's scheduler processes one
// operation at a time). It stays the differential reference every other
// discipline and variant is checked against.
type Scheduler struct {
	opts   Options
	k      int
	tab    *VectorTable   // the TS table of Fig. 2
	rt     map[string]int // RT(x): most recent reader
	wt     map[string]int // WT(x): most recent writer
	access map[string]int // per-item access counts (hot-item detection)
	pins   map[int]int    // #items for which txn is RT or WT
	done   map[int]bool   // committed transactions awaiting unpin
}

// NewScheduler returns an initialized MT(k) scheduler. TS(0) = <0,*,...,*>
// represents the virtual transaction T_0 that read and wrote every item
// before all others; RT(x) = WT(x) = 0 for every x.
func NewScheduler(opts Options) *Scheduler {
	if opts.K < 1 {
		panic("engine: Options.K must be >= 1")
	}
	s := &Scheduler{
		opts:   opts,
		k:      opts.K,
		tab:    NewVectorTable(opts.K),
		rt:     make(map[string]int),
		wt:     make(map[string]int),
		access: make(map[string]int),
		pins:   make(map[int]int),
		done:   make(map[int]bool),
	}
	s.tab.Monotonic = opts.MonotonicEncoding
	if opts.Trace != nil {
		s.tab.OnAssign = func(id, pos int, val int64) {
			opts.Trace(core.Event{Kind: core.EvAssign, Txn: id, Pos: pos, Val: val})
		}
	}
	return s
}

// Table exposes the underlying timestamp table (read-mostly helpers).
func (s *Scheduler) Table() *VectorTable { return s.tab }

// K returns the vector size.
func (s *Scheduler) K() int { return s.k }

// Counters returns the current (lcount, ucount) pair, for tests.
func (s *Scheduler) Counters() (lo, hi int64) { return s.tab.Counters() }

// Watermarks returns the monotone counter-consumption watermarks the
// WAL journals. It takes no lock: the coarse discipline's owner already
// serializes access, and the WAL counter source runs under the store
// journal hook, inside the adapter's critical sections.
func (s *Scheduler) Watermarks() (lo, hi int64) { return s.tab.Watermarks() }

// RaiseWatermarks lifts the counters to at least the given watermarks
// (recovery seeding), raise-only.
func (s *Scheduler) RaiseWatermarks(lo, hi int64) { s.tab.RaiseWatermarks(lo, hi) }

// Vector returns a copy of TS(i). Unknown transactions have the
// all-undefined vector.
func (s *Scheduler) Vector(i int) *core.Vector { return s.tab.Vector(i).Clone() }

// Snapshot returns copies of all live timestamp vectors keyed by
// transaction id.
func (s *Scheduler) Snapshot() map[int]*core.Vector { return s.tab.Snapshot() }

// RT returns RT(x), the most recent reader of x (0 if none).
func (s *Scheduler) RT(x string) int { return s.rt[x] }

// WT returns WT(x), the most recent writer of x (0 if none).
func (s *Scheduler) WT(x string) int { return s.wt[x] }

// less reports whether TS(a) < TS(b) is established.
func (s *Scheduler) less(a, b int) bool { return s.tab.Less(a, b) }

// hot reports whether x qualifies for right-shifted encoding.
func (s *Scheduler) hot(x string) bool {
	if s.opts.HotItems[x] {
		return true
	}
	return s.opts.HotThreshold > 0 && s.access[x] >= s.opts.HotThreshold
}

// Set implements procedure Set(j, i): it tries to establish or encode
// TS(j) < TS(i) and reports success. It is exported for the composite and
// nested protocols, which reuse the element-assignment rules.
func (s *Scheduler) Set(j, i int) bool { return s.setDep(j, i, "") }

// setDep is Set(j, i); x (may be empty) is the item whose access created
// the dependency, used to decide hot-item right-shifted encoding.
func (s *Scheduler) setDep(j, i int, x string) bool {
	if j == i {
		return true
	}
	rel, _ := s.tab.Vector(j).Compare(s.tab.Vector(i))
	if rel == core.Greater {
		return false
	}
	if rel == core.Less {
		if s.opts.Trace != nil {
			s.opts.Trace(core.Event{Kind: core.EvEstablished, J: j, I: i})
		}
		return true
	}
	shift := x != "" && s.hot(x)
	if !s.tab.Set(j, i, shift) {
		return false
	}
	if s.opts.Trace != nil {
		s.opts.Trace(core.Event{Kind: core.EvEncode, J: j, I: i})
	}
	return true
}

// Step schedules one atomic operation. Multi-item operations (the two-step
// model's set reads/writes) process their items in order; the first
// rejecting item rejects the whole operation.
func (s *Scheduler) Step(op oplog.Op) core.Decision {
	// A transaction issuing operations is live: a restarted incarnation
	// after Abort reactivates its (possibly reseeded) vector.
	delete(s.done, op.Txn)
	var ignored []string
	for _, x := range op.Items {
		s.access[x]++
		var v core.Verdict
		var blocker int
		if op.Kind == oplog.Read {
			v, blocker = s.stepRead(op.Txn, x)
		} else {
			v, blocker = s.stepWrite(op.Txn, x)
		}
		switch v {
		case core.Reject:
			return core.Decision{Op: op, Verdict: core.Reject, Blocker: blocker, Item: x}
		case core.AcceptIgnored:
			ignored = append(ignored, x)
		}
	}
	verdict := core.Accept
	if len(ignored) == len(op.Items) {
		verdict = core.AcceptIgnored
	}
	return core.Decision{Op: op, Verdict: verdict, IgnoredItems: ignored}
}

// maxHolder returns j := RT(x) or WT(x), whichever has the larger
// timestamp (Algorithm 1 lines 5-6). RT(x) and WT(x) are always comparable
// for the same item because reads and writes of x conflict pairwise.
func (s *Scheduler) maxHolder(x string) int {
	if s.less(s.rt[x], s.wt[x]) {
		return s.wt[x]
	}
	return s.rt[x]
}

// stepRead implements the read arm of the Scheduler procedure.
func (s *Scheduler) stepRead(i int, x string) (core.Verdict, int) {
	j := s.maxHolder(x)
	if s.setDep(j, i, x) {
		s.repin(x, &s.rt, i)
		return core.Accept, 0
	}
	// Line 9: the read may slot between the most recent write and the most
	// recent read without becoming the most recent reader.
	if j == s.rt[x] {
		if s.opts.RelaxedReadCheck {
			if s.setDep(s.wt[x], i, x) {
				return core.Accept, 0
			}
		} else if s.less(s.wt[x], i) {
			return core.Accept, 0
		}
	}
	return core.Reject, j
}

// stepWrite implements the write arm of the Scheduler procedure.
func (s *Scheduler) stepWrite(i int, x string) (core.Verdict, int) {
	j := s.maxHolder(x)
	if s.setDep(j, i, x) {
		s.repin(x, &s.wt, i)
		return core.Accept, 0
	}
	// Thomas write rule: if TS(RT(x)) < TS(i) < TS(WT(x)), the write is
	// obsolete and can be ignored.
	if s.opts.ThomasWriteRule && j == s.wt[x] && s.less(i, s.wt[x]) && s.setDep(s.rt[x], i, x) {
		return core.AcceptIgnored, 0
	}
	return core.Reject, j
}

// repin moves the RT or WT index for x to txn, maintaining pin counts used
// for vector storage reclamation (implementation issue (b)).
func (s *Scheduler) repin(x string, table *map[string]int, txn int) {
	old := (*table)[x]
	if old == txn {
		return
	}
	(*table)[x] = txn
	s.pins[txn]++
	s.unpin(old)
}

// unpin decrements old's pin count (one pin per RT/WT slot it occupies)
// and reclaims its vector if the transaction is finished and unreferenced.
func (s *Scheduler) unpin(old int) {
	if old == 0 {
		return
	}
	s.pins[old]--
	s.maybeReclaim(old)
}

// maybeReclaim frees TS(i) storage once transaction i is finished and no
// longer the most recent read/write timestamp of any item.
func (s *Scheduler) maybeReclaim(i int) {
	if i == 0 {
		return
	}
	if s.done[i] && s.pins[i] <= 0 {
		s.tab.Drop(i)
		delete(s.pins, i)
		delete(s.done, i)
	}
}

// Commit marks transaction i finished; its vector storage is reclaimed as
// soon as it stops being a most-recent read or write timestamp.
func (s *Scheduler) Commit(i int) {
	s.done[i] = true
	s.maybeReclaim(i)
}

// Abort discards transaction i. blocker is the Blocker from the rejecting
// Decision (0 if the abort had another cause). With StarvationAvoidance
// the vector is flushed and reseeded with TS(blocker,1)+1 so a restarted
// incarnation cannot be blocked by the same transaction again; otherwise
// the vector is treated like a committed one and reclaimed when unpinned.
func (s *Scheduler) Abort(i, blocker int) {
	if i == 0 {
		return
	}
	if s.opts.StarvationAvoidance && blocker != 0 {
		b := s.tab.Vector(blocker).Elem(1)
		if b.Defined {
			// Seed past the blocker AND past the column-1 clock: the
			// restarted incarnation dominates every vector assigned so
			// far (the paper requires only TS(j,1)+1; seeding to the
			// clock additionally prevents the restart from being
			// leapfrogged by the rest of the population, matching the
			// fresh-timestamp behaviour of TO restarts). Both seeds
			// dominate the old vector, so established w < TS(i)
			// relations survive. ReseedFirst keeps the counter column
			// consistent when k = 1.
			seed := s.tab.ReseedFirst(i, b.V)
			if s.opts.Trace != nil {
				s.opts.Trace(core.Event{Kind: core.EvFlush, Txn: i, Val: seed})
			}
			// The seeded vector must survive for the restart.
			return
		}
	}
	s.done[i] = true
	s.maybeReclaim(i)
}

// LiveVectors returns the number of vectors currently held in the table
// (including T_0), for storage-reclamation tests.
func (s *Scheduler) LiveVectors() int { return s.tab.Len() }

// SeedVector installs an explicit vector for transaction i. It exists to
// reproduce the paper's worked tables (which start mid-log, e.g. Table II's
// TS(4) = <1,4>) and for tests; production schedulers never need it.
func (s *Scheduler) SeedVector(i int, elems ...core.Elem) { s.tab.Seed(i, elems...) }

// SetCounters overrides the k-th-column counters, for table reproduction
// and tests.
func (s *Scheduler) SetCounters(lo, hi int64) { s.tab.SetCounters(lo, hi) }

// AcceptLog runs a complete log through a fresh continuation of the
// scheduler. It returns (true, -1) if every operation is accepted, or
// (false, i) where i is the index of the first rejected operation.
// Thomas-rule ignored writes count as accepted.
func (s *Scheduler) AcceptLog(l *oplog.Log) (bool, int) {
	for idx, op := range l.Ops {
		if d := s.Step(op); d.Verdict == core.Reject {
			return false, idx
		}
	}
	return true, -1
}

// Accepts reports whether MT(k) with the given options accepts the log,
// i.e. whether the log is in the class TO(k) (for default options).
func Accepts(k int, l *oplog.Log) bool {
	ok, _ := NewScheduler(Options{K: k}).AcceptLog(l)
	return ok
}

// SerialOrder returns a serialization order for the given transactions
// consistent with every established timestamp relation: a topological sort
// of the vectors (the paper's "topological sort of the corresponding
// timestamp vectors"). Transactions absent from the table keep their
// relative id order. The virtual transaction 0 is excluded.
func (s *Scheduler) SerialOrder(txns []int) []int {
	// Build the established-order graph over the given transactions.
	idx := make(map[int]int, len(txns))
	for p, t := range txns {
		if t == 0 {
			panic("engine: SerialOrder over the virtual transaction")
		}
		idx[t] = p
	}
	type edge struct{ u, v int }
	var edges []edge
	for a, pa := range idx {
		for b, pb := range idx {
			if a != b && s.less(a, b) {
				edges = append(edges, edge{pa, pb})
			}
		}
	}
	// Kahn with smallest-id preference for determinism.
	n := len(txns)
	indeg := make([]int, n)
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.u] = append(adj[e.u], e.v)
		indeg[e.v]++
	}
	order := make([]int, 0, n)
	used := make([]bool, n)
	for len(order) < n {
		pick := -1
		for p := 0; p < n; p++ {
			if !used[p] && indeg[p] == 0 && (pick == -1 || txns[p] < txns[pick]) {
				pick = p
			}
		}
		if pick == -1 {
			panic(fmt.Sprintf("engine: established relations are cyclic over %v", txns))
		}
		used[pick] = true
		order = append(order, txns[pick])
		for _, v := range adj[pick] {
			indeg[v]--
		}
	}
	return order
}
