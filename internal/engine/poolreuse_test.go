package engine

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestPooledEntryGenerationCheck walks the reclaim/recycle lifecycle
// deterministically and checks the invariant the lockTxns generation
// check relies on: a pooled entry that has been re-published for a
// different transaction no longer validates under its old identity, so
// a straggler holding a stale pointer can never mutate it unnoticed.
func TestPooledEntryGenerationCheck(t *testing.T) {
	s := NewStriped(Options{K: 3})
	lt := s.Latches()
	id := s.ItemID("x")
	stripe := lt.StripeOfID(id)

	step := func(txn int, read bool) core.Verdict {
		lt.LockStripe(stripe)
		defer lt.UnlockStripe(stripe)
		var v core.Verdict
		if read {
			v, _ = s.StepReadID(txn, id)
		} else {
			v, _ = s.StepWriteID(txn, id)
		}
		return v
	}

	if v := step(5, true); v != core.Accept {
		t.Fatalf("T5 read: %v", v)
	}
	e5 := s.lookup(5)
	if e5 == nil {
		t.Fatal("no entry for T5")
	}
	gen := e5.gen

	// Commit alone must not reclaim: T5 is still the item's RT, so a
	// later conflict test may still need its vector.
	s.Commit(5)
	if e5.dead.Load() {
		t.Fatal("entry reclaimed while still pinned as RT")
	}

	// T6's read repins RT(x) from 5 to 6, dropping T5's last pin: now
	// the committed entry is reclaimed and its generation bumped.
	if v := step(6, true); v != core.Accept {
		t.Fatalf("T6 read: %v", v)
	}
	if !e5.dead.Load() {
		t.Fatal("entry not reclaimed after losing its last pin")
	}
	if e5.gen != gen+1 {
		t.Fatalf("reclaim gen = %d, want %d", e5.gen, gen+1)
	}
	if s.lookup(5) != nil {
		t.Fatal("reclaimed entry still published under id 5")
	}

	// Re-admission recycles from the pool (LIFO: the object just put
	// back). The recycled object now answers to the new id only — the
	// exact predicate lockTxns re-checks after locking, so any stale
	// holder of e5 expecting transaction 5 is forced to retry.
	if v := step(7, false); v != core.Accept {
		t.Fatalf("T7 write: %v", v)
	}
	e7 := s.lookup(7)
	if e7 == nil {
		t.Fatal("no entry for T7")
	}
	if e7 == e5 {
		if e5.id != 7 || e5.gen != gen+2 {
			t.Fatalf("recycled entry id=%d gen=%d, want id=7 gen=%d", e5.id, e5.gen, gen+2)
		}
	} else {
		// The pool is free to have dropped the entry (GC); the dead
		// flag still guards every stale holder.
		if !e5.dead.Load() {
			t.Fatal("unrecycled reclaimed entry lost its dead mark")
		}
	}
}

// TestPooledEntryReuseStress hammers a tiny transaction-id window from
// many goroutines so entries are continuously aborted, reclaimed and
// re-admitted while other goroutines hold and lock stale pointers
// (Vector/Snapshot readers, lock-set retries). Under -race this is the
// pooled-reuse safety gate: the generation check must convert every
// stale access into a retry, never a silent mutation of a recycled
// entry. Afterwards the atomic live-entry counter must agree exactly
// with the published snapshot — a double reclaim or leaked publish
// shows up as a counter divergence.
func TestPooledEntryReuseStress(t *testing.T) {
	s := NewStriped(Options{K: 3, StarvationAvoidance: true})
	lt := s.Latches()
	items := make([]int32, 8)
	for i := range items {
		items[i] = s.ItemID(string(rune('a' + i)))
	}
	const (
		workers   = 8
		iters     = 4000
		txnWindow = 32
	)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < iters; i++ {
				txn := 1 + rng.Intn(txnWindow)
				id := items[rng.Intn(len(items))]
				stripe := lt.StripeOfID(id)
				lt.LockStripe(stripe)
				var v core.Verdict
				var blocker int
				if rng.Intn(2) == 0 {
					v, blocker = s.StepReadID(txn, id)
				} else {
					v, blocker = s.StepWriteID(txn, id)
				}
				lt.UnlockStripe(stripe)
				switch {
				case v == core.Reject:
					s.Abort(txn, blocker)
				case rng.Intn(3) == 0:
					s.Commit(txn)
				case rng.Intn(5) == 0:
					s.Abort(txn, 0)
				}
				if rng.Intn(4) == 0 {
					_ = s.Vector(txn) // stale-prone reader
				}
				if rng.Intn(128) == 0 {
					_ = s.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	snap := s.Snapshot()
	if got := s.LiveVectors(); got != len(snap) {
		t.Fatalf("live counter %d != published entries %d", got, len(snap))
	}
	if _, ok := snap[0]; !ok {
		t.Fatal("T0 missing from snapshot")
	}
	t.Logf("stale lock retries caught: %d", s.StaleRetries())
}
