package engine

import (
	"fmt"
	"math/rand"
	"testing"

	. "repro/internal/core"
	"repro/internal/oplog"
)

func TestFuzzSchedulerLifecycle(t *testing.T) {
	items := []string{"a", "b", "c"}
	for seed := int64(0); seed < 20000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		s := NewScheduler(Options{K: k, StarvationAvoidance: true,
			ThomasWriteRule: rng.Intn(2) == 0, RelaxedReadCheck: rng.Intn(2) == 0})
		type tstate struct {
			blocker int
			live    bool
		}
		txns := map[int]*tstate{}
		var trace []string
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d panic: %v\ntrace:\n%s", seed, r, fmt.Sprint(trace))
				}
			}()
			for step := 0; step < 40; step++ {
				txn := 1 + rng.Intn(5)
				st := txns[txn]
				if st == nil {
					st = &tstate{live: true}
					txns[txn] = st
				}
				switch rng.Intn(10) {
				case 0: // commit
					if st.live {
						trace = append(trace, fmt.Sprintf("C%d", txn))
						s.Commit(txn)
						st.live = false
					}
				case 1: // abort
					trace = append(trace, fmt.Sprintf("A%d(b=%d)", txn, st.blocker))
					s.Abort(txn, st.blocker)
					st.blocker = 0
				default:
					it := items[rng.Intn(len(items))]
					var op oplog.Op
					if rng.Intn(2) == 0 {
						op = oplog.R(txn, it)
					} else {
						op = oplog.W(txn, it)
					}
					trace = append(trace, op.String())
					st.live = true
					d := s.Step(op)
					if d.Verdict == Reject {
						st.blocker = d.Blocker
					}
				}
			}
		}()
	}
}
