package engine

import (
	"fmt"

	"repro/internal/core"
)

// VectorTable is the timestamp table of Fig. 2: a set of k-dimensional
// timestamp vectors indexed by an integer id (transaction or, in the
// nested protocol, group), together with the lcount/ucount counters that
// keep the k-th column distinct. It implements the dependency-encoding
// procedure Set(j, i) of Algorithm 1 via the shared kernel (encode.go);
// the MT(k) Scheduler and the group-level table of MT(k1,k2) are both
// built on it.
//
// Id 0 is the virtual transaction/group T_0 with TS(0) = <0,*,...,*>.
type VectorTable struct {
	k        int
	vec      map[int]*core.Vector
	counters *LocalCounters
	// clock[m] tracks the largest value assigned in column m+1, used by
	// the monotonic-encoding ablation.
	clock []int64
	// Monotonic switches element assignment to Lamport-style values:
	// every new upper value exceeds everything previously assigned in its
	// column. This removes the protocol's spurious rejections (a
	// transaction pinned to a small element by a shallow conflict chain
	// can meet a deeper chain's larger element even in a serial run), but
	// deliberately destroys the paper's Example 1 behaviour, where T2 and
	// T3 must receive EQUAL elements. Off by default; used as an ablation.
	Monotonic bool
	// OnAssign, when non-nil, observes every element assignment.
	OnAssign func(id, pos int, val int64)
}

// NewVectorTable returns a table of k-element vectors with TS(0) installed.
func NewVectorTable(k int) *VectorTable {
	if k < 1 {
		panic("engine: vector size must be >= 1")
	}
	t := &VectorTable{k: k, vec: make(map[int]*core.Vector), counters: NewLocalCounters(), clock: make([]int64, k)}
	t0 := core.NewVector(k)
	t0.SetElem(1, 0)
	t.vec[0] = t0
	return t
}

// K returns the vector size.
func (t *VectorTable) K() int { return t.k }

// Counters returns the current (lcount, ucount).
func (t *VectorTable) Counters() (lo, hi int64) { return t.counters.Counters() }

// Clock returns the largest value ever assigned in column m (1-based),
// or 0. The starvation fix reseeds past it so a restarted transaction is
// not leapfrogged by the whole population again.
func (t *VectorTable) Clock(m int) int64 { return t.clock[m-1] }

// SetCounters overrides the counters (table reproduction and tests).
func (t *VectorTable) SetCounters(lo, hi int64) { t.counters.SetCounters(lo, hi) }

// Watermarks returns the monotone counter-consumption watermarks (see
// LocalCounters.Watermarks), the pair durable schedulers journal.
func (t *VectorTable) Watermarks() (lo, hi int64) { return t.counters.Watermarks() }

// RaiseWatermarks lifts the counters to at least the given watermarks
// (recovery seeding), raise-only.
func (t *VectorTable) RaiseWatermarks(lo, hi int64) { t.counters.Raise(lo, hi) }

// Vector returns the live vector for id, creating an all-undefined one on
// demand.
func (t *VectorTable) Vector(id int) *core.Vector {
	if v, ok := t.vec[id]; ok {
		return v
	}
	v := core.NewVector(t.k)
	t.vec[id] = v
	return v
}

// Seed installs an explicit vector (tests and table reproduction).
func (t *VectorTable) Seed(id int, elems ...core.Elem) {
	if len(elems) != t.k {
		panic(fmt.Sprintf("engine: Seed needs %d elements, got %d", t.k, len(elems)))
	}
	t.vec[id] = core.VectorOf(elems...)
}

// Drop removes id's vector from the table (storage reclamation).
func (t *VectorTable) Drop(id int) { delete(t.vec, id) }

// Len returns the number of live vectors (including id 0).
func (t *VectorTable) Len() int { return len(t.vec) }

// Snapshot returns copies of all live vectors.
func (t *VectorTable) Snapshot() map[int]*core.Vector {
	out := make(map[int]*core.Vector, len(t.vec))
	for i, v := range t.vec {
		out[i] = v.Clone()
	}
	return out
}

// assign sets element pos of id's vector.
func (t *VectorTable) assign(id, pos int, val int64) {
	t.Vector(id).SetElem(pos, val)
	if val > t.clock[pos-1] {
		t.clock[pos-1] = val
	}
	if t.OnAssign != nil {
		t.OnAssign(id, pos, val)
	}
}

// upper returns the value for a fresh "greater" element in column m:
// floor+1 normally, or past the column clock under monotonic encoding.
func (t *VectorTable) upper(m int, floor int64) int64 {
	v := floor + 1
	if t.Monotonic && t.clock[m-1]+1 > v {
		v = t.clock[m-1] + 1
	}
	return v
}

// ReseedFirst implements the table side of the starvation fix: it
// flushes id's vector and seeds element 1 to a value strictly greater
// than both floor and every value previously assigned in column 1. When
// k = 1, column 1 is the distinct counter column, so the seed is
// allocated from ucount (and bumps it) to preserve uniqueness — writing
// an arbitrary value there collides with future counter allocations and
// corrupts the table. Returns the seeded value.
func (t *VectorTable) ReseedFirst(id int, floor int64) int64 {
	seed := floor + 1
	if c := t.clock[0] + 1; c > seed {
		seed = c
	}
	if t.k == 1 {
		seed = t.counters.ReserveAtLeast(seed)
	}
	v := t.Vector(id)
	v.Reset()
	t.assign(id, 1, seed)
	return seed
}

// Less reports whether TS(a) < TS(b) is established.
func (t *VectorTable) Less(a, b int) bool {
	if a == b {
		return false
	}
	return t.Vector(a).Less(t.Vector(b))
}

// tableSink routes kernel assignments through the table's assign (clock
// plus OnAssign hook) and its upper rule (monotonic ablation).
type tableSink struct {
	t    *VectorTable
	j, i int
}

func (s tableSink) Assign(side Side, pos int, val int64) {
	if side == SideJ {
		s.t.assign(s.j, pos, val)
	} else {
		s.t.assign(s.i, pos, val)
	}
}

func (s tableSink) Upper(m int, floor int64) int64 { return s.t.upper(m, floor) }

// Set implements procedure Set(j, i): establish or encode TS(j) < TS(i),
// reporting success. When shift is true the dependency is pushed toward
// the right end of the vectors (the Section III-D-5 optimized encoding for
// hot items) whenever possible.
func (t *VectorTable) Set(j, i int, shift bool) bool {
	return Dep{
		J: j, I: i,
		VJ: t.Vector(j), VI: t.Vector(i),
		K:     t.k,
		Alloc: t.counters,
		Sink:  tableSink{t: t, j: j, i: i},
		Shift: shift,
	}.Encode()
}
