package engine

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	. "repro/internal/core"
	"repro/internal/oplog"
)

func mustAccept(t *testing.T, s *Scheduler, log string) {
	t.Helper()
	l := oplog.MustParse(log)
	ok, at := s.AcceptLog(l)
	if !ok {
		t.Fatalf("log %q rejected at op %d (%v)", log, at, l.Ops[at])
	}
}

// Example 1 (Section I-A): after W1[x] W1[y] R3[x] R2[y], T2 and T3 share
// the first element; the later W3[y] is encoded in the second dimension
// without aborting T3.
func TestExample1Vectors(t *testing.T) {
	s := NewScheduler(Options{K: 2})
	mustAccept(t, s, "W1[x] W1[y] R3[x] R2[y]")
	for txn, want := range map[int]string{1: "<1,*>", 2: "<2,*>", 3: "<2,*>"} {
		if got := s.Vector(txn).String(); got != want {
			t.Errorf("TS(%d) = %s, want %s", txn, got, want)
		}
	}
	// Continue the log: W3[y] conflicts with R2[y]; the 2nd dimension
	// encodes T2 -> T3.
	d := s.Step(oplog.W(3, "y"))
	if d.Verdict != Accept {
		t.Fatalf("W3[y] verdict = %v", d.Verdict)
	}
	for txn, want := range map[int]string{1: "<1,*>", 2: "<2,1>", 3: "<2,2>"} {
		if got := s.Vector(txn).String(); got != want {
			t.Errorf("after W3[y]: TS(%d) = %s, want %s", txn, got, want)
		}
	}
	if got := s.SerialOrder([]int{1, 2, 3}); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("serial order = %v, want [1 2 3]", got)
	}
}

// Example 1 shows the log is rejected by single-dimension protocols when
// the dependency T2 -> T3 arrives against the premature total order:
// with k = 1 every encoding is forced through the distinct counter column,
// so T3 (which got its element first) is stuck before T2.
func TestExample1SingleDimensionAborts(t *testing.T) {
	s := NewScheduler(Options{K: 1})
	mustAccept(t, s, "W1[x] W1[y] R3[x] R2[y]")
	d := s.Step(oplog.W(3, "y"))
	if d.Verdict != Reject {
		t.Fatalf("MT(1) accepted W3[y]; vectors: T2=%v T3=%v", s.Vector(2), s.Vector(3))
	}
	if d.Blocker != 2 {
		t.Errorf("blocker = %d, want 2", d.Blocker)
	}
	if d.Item != "y" {
		t.Errorf("item = %q, want y", d.Item)
	}
}

// Example 2 / Table I: exact vector evolution for
// R1[x] R2[y] R3[z] W1[y] W1[z] with k = 2.
func TestTableI(t *testing.T) {
	var got []string
	s := NewScheduler(Options{K: 2})
	step := func(op oplog.Op, wantVecs map[int]string) {
		t.Helper()
		if d := s.Step(op); d.Verdict != Accept {
			t.Fatalf("%v rejected", op)
		}
		for txn, want := range wantVecs {
			if g := s.Vector(txn).String(); g != want {
				t.Errorf("after %v: TS(%d) = %s, want %s", op, txn, g, want)
			}
		}
		got = append(got, op.String())
	}
	if v := s.Vector(0).String(); v != "<0,*>" {
		t.Fatalf("TS(0) = %s", v)
	}
	step(oplog.R(1, "x"), map[int]string{1: "<1,*>"})                         // edge a: T0->T1
	step(oplog.R(2, "y"), map[int]string{2: "<1,*>"})                         // edge b: T0->T2
	step(oplog.R(3, "z"), map[int]string{3: "<1,*>"})                         // edge c: T0->T3
	step(oplog.W(1, "y"), map[int]string{2: "<1,1>", 1: "<1,2>"})             // edge d: T2->T1
	step(oplog.W(1, "z"), map[int]string{3: "<1,0>", 1: "<1,2>", 2: "<1,1>"}) // edge e: T3->T1
	// Resulting vectors row of Table I.
	want := map[int]string{0: "<0,*>", 1: "<1,2>", 2: "<1,1>", 3: "<1,0>"}
	for txn, w := range want {
		if g := s.Vector(txn).String(); g != w {
			t.Errorf("resulting TS(%d) = %s, want %s", txn, g, w)
		}
	}
	// L is equivalent to T3 T2 T1 or T2 T3 T1; the resulting vectors
	// <1,0> < <1,1> < <1,2> pick T3 T2 T1.
	if order := s.SerialOrder([]int{1, 2, 3}); !reflect.DeepEqual(order, []int{3, 2, 1}) {
		t.Errorf("serial order = %v, want [3 2 1]", order)
	}
}

// Example 3 / Table II: a frequently accessed item chains the first
// elements 1, 2, 3 across T1, T2, T3 while the unrelated T4 = <1,4>
// stays untouched.
func TestTableII(t *testing.T) {
	s := NewScheduler(Options{K: 2})
	s.SeedVector(4, Int(1), Int(4))
	s.SetCounters(0, 5)
	mustAccept(t, s, "R1[x] W2[x] W3[x]")
	want := map[int]string{0: "<0,*>", 1: "<1,*>", 2: "<2,*>", 3: "<3,*>", 4: "<1,4>"}
	for txn, w := range want {
		if g := s.Vector(txn).String(); g != w {
			t.Errorf("TS(%d) = %s, want %s", txn, g, w)
		}
	}
	// The chained encoding enforces a total order with T4 as collateral:
	// TS(4) = <1,4> is now below TS(2) and TS(3).
	if !s.Vector(4).Less(s.Vector(2)) || !s.Vector(4).Less(s.Vector(3)) {
		t.Error("expected TS(4) < TS(2) and TS(4) < TS(3) (the paper's total-order effect)")
	}
}

// Section III-D-5: with hot-item encoding the same dependency is pushed to
// the right end of the vector, preserving incomparability with other
// prefix-sharing vectors.
func TestHotItemEncoding(t *testing.T) {
	s := NewScheduler(Options{K: 4, HotItems: map[string]bool{"x": true}})
	s.SeedVector(1, Int(1), Int(3), Undef, Undef)
	// Encode T1 -> T2 due to hot item x.
	if !s.setDep(1, 2, "x") {
		t.Fatal("setDep failed")
	}
	if got := s.Vector(1).String(); got != "<1,3,1,*>" {
		t.Errorf("TS(1) = %s, want <1,3,1,*>", got)
	}
	if got := s.Vector(2).String(); got != "<1,3,2,*>" {
		t.Errorf("TS(2) = %s, want <1,3,2,*>", got)
	}
	// A vector with the shared prefix <1,*,...> remains incomparable with
	// TS(2) (no premature total order).
	s.SeedVector(5, Int(1), Undef, Undef, Undef)
	if rel, _ := s.Vector(5).Compare(s.Vector(2)); rel != Unknown {
		t.Errorf("TS(5) vs TS(2) = %v, want Unknown", rel)
	}
}

func TestHotItemEncodingCold(t *testing.T) {
	// Without the hot marker the same dependency is encoded at the normal
	// (leftmost) position.
	s := NewScheduler(Options{K: 4})
	s.SeedVector(1, Int(1), Int(3), Undef, Undef)
	if !s.setDep(1, 2, "x") {
		t.Fatal("setDep failed")
	}
	if got := s.Vector(2).String(); got != "<2,*,*,*>" {
		t.Errorf("TS(2) = %s, want <2,*,*,*>", got)
	}
}

func TestHotThresholdDynamic(t *testing.T) {
	s := NewScheduler(Options{K: 4, HotThreshold: 3})
	if s.hot("x") {
		t.Fatal("x hot before any access")
	}
	for i := 0; i < 3; i++ {
		s.access["x"]++
	}
	if !s.hot("x") {
		t.Fatal("x not hot after reaching threshold")
	}
}

// Fig. 5: W1[x] W2[x] R3[y] W3[x] starves T3 without the fix and commits
// after one restart with it.
func TestStarvationWithoutFix(t *testing.T) {
	s := NewScheduler(Options{K: 2})
	mustAccept(t, s, "W1[x] W2[x] R3[y]")
	for attempt := 0; attempt < 3; attempt++ {
		d := s.Step(oplog.W(3, "x"))
		if d.Verdict != Reject {
			t.Fatalf("attempt %d: W3[x] accepted; starvation should repeat", attempt)
		}
		s.Abort(3, d.Blocker)
		// restart: re-issue R3[y] then W3[x]
		if rd := s.Step(oplog.R(3, "y")); rd.Verdict != Accept {
			t.Fatalf("attempt %d: restart read rejected", attempt)
		}
	}
}

func TestStarvationFix(t *testing.T) {
	s := NewScheduler(Options{K: 2, StarvationAvoidance: true})
	mustAccept(t, s, "W1[x] W2[x] R3[y]")
	d := s.Step(oplog.W(3, "x"))
	if d.Verdict != Reject || d.Blocker != 2 {
		t.Fatalf("first W3[x]: got %+v", d)
	}
	s.Abort(3, d.Blocker)
	// Per the paper, TS(3) is flushed to <3,*> (TS(2,1)+1 = 3).
	if got := s.Vector(3).String(); got != "<3,*>" {
		t.Fatalf("after flush TS(3) = %s, want <3,*>", got)
	}
	// Restart T3: both operations must now be accepted.
	mustAccept(t, s, "R3[y] W3[x]")
}

// Thomas write rule: an obsolete write with TS(RT(x)) < TS(i) < TS(WT(x))
// is accepted and ignored instead of aborted.
func TestThomasWriteRule(t *testing.T) {
	run := func(thomas bool) Decision {
		s := NewScheduler(Options{K: 2, ThomasWriteRule: thomas})
		// T1 writes x with a large timestamp; T2 then tries an obsolete
		// write. Build TS(2) < TS(1) via item y first.
		mustAccept(t, s, "W2[y] R1[y] W1[x]")
		// TS(2)=<1,*> < TS(1)=<2,*>; WT(x)=1, RT(x)=0.
		return s.Step(oplog.W(2, "x"))
	}
	if d := run(false); d.Verdict != Reject {
		t.Fatalf("without Thomas rule: %v", d.Verdict)
	}
	d := run(true)
	if d.Verdict != AcceptIgnored {
		t.Fatalf("with Thomas rule: %v", d.Verdict)
	}
	if !reflect.DeepEqual(d.IgnoredItems, []string{"x"}) {
		t.Fatalf("IgnoredItems = %v", d.IgnoredItems)
	}
}

func TestThomasWriteRuleStillRejectsLateWriteUnderNewerRead(t *testing.T) {
	// If the most recent READER is ahead of the writer, the write cannot be
	// ignored: a later read should have seen it.
	s := NewScheduler(Options{K: 2, ThomasWriteRule: true})
	mustAccept(t, s, "W2[y] R1[y] W1[x] R3[x]")
	// RT(x)=3 with TS(3) > TS(1) > TS(2): T2's write must abort.
	if d := s.Step(oplog.W(2, "x")); d.Verdict != Reject {
		t.Fatalf("got %v, want Reject", d.Verdict)
	}
}

// Line 9: a read may slot between the most recent write and the most
// recent read without becoming the most recent reader.
func TestReadSlotsBetweenWriteAndRead(t *testing.T) {
	s := NewScheduler(Options{K: 2})
	mustAccept(t, s, "R1[x] W2[x] W2[z] R3[x] R4[z] W3[z]")
	// Established: TS(2) < TS(4) < TS(3); RT(x)=3, WT(x)=2.
	if !s.less(2, 4) || !s.less(4, 3) {
		t.Fatalf("setup broken: TS2=%v TS4=%v TS3=%v", s.Vector(2), s.Vector(4), s.Vector(3))
	}
	d := s.Step(oplog.R(4, "x"))
	if d.Verdict != Accept {
		t.Fatalf("R4[x] = %v, want Accept via line 9", d.Verdict)
	}
	if s.RT("x") != 3 {
		t.Errorf("RT(x) = %d, want 3 (line 10 must not update RT)", s.RT("x"))
	}
}

func TestRelaxedReadCheckAcceptsMore(t *testing.T) {
	build := func(relaxed bool) (*Scheduler, Decision) {
		s := NewScheduler(Options{K: 2, RelaxedReadCheck: relaxed})
		mustAccept(t, s, "R1[x] R2[v] W2[x] R3[x] W4[w]")
		// TS(4)=<1,*>: unordered w.r.t. WT(x)=2 (<1,2>); RT(x)=3 (<2,*>)
		// is established-greater once T4 is pinned below it.
		mustAccept(t, s, "R4[q] W3[q]") // establish TS(4) < TS(3)
		return s, s.Step(oplog.R(4, "x"))
	}
	if _, d := build(false); d.Verdict != Reject {
		t.Fatalf("strict check: got %v, want Reject", d.Verdict)
	}
	if _, d := build(true); d.Verdict != Accept {
		t.Fatalf("relaxed check: got %v, want Accept", d.Verdict)
	}
}

func TestMultiItemOpAllOrNothing(t *testing.T) {
	s := NewScheduler(Options{K: 2})
	mustAccept(t, s, "R1[x,y] W1[x,y] R2[x,y] W2[x,y]")
	// Two-step transactions with set operations compose cleanly.
	if order := s.SerialOrder([]int{1, 2}); !reflect.DeepEqual(order, []int{1, 2}) {
		t.Fatalf("order = %v", order)
	}
}

func TestCountersAdvance(t *testing.T) {
	s := NewScheduler(Options{K: 1})
	mustAccept(t, s, "W1[x] W2[x]")
	lo, hi := s.Counters()
	if lo > 0 || hi <= 1 {
		t.Fatalf("counters = (%d,%d)", lo, hi)
	}
}

func TestStorageReclamation(t *testing.T) {
	s := NewScheduler(Options{K: 2})
	mustAccept(t, s, "R1[x] W1[x]")
	s.Commit(1)
	if s.LiveVectors() != 2 { // T0 and T1 (still RT/WT of x)
		t.Fatalf("live = %d, want 2", s.LiveVectors())
	}
	mustAccept(t, s, "R2[x] W2[x]") // T2 takes over RT(x) and WT(x)
	if s.LiveVectors() != 2 {       // T0 and T2: T1 reclaimed
		t.Fatalf("after takeover live = %d, want 2", s.LiveVectors())
	}
	s.Commit(2)
	if s.LiveVectors() != 2 { // T2 still pinned as RT/WT
		t.Fatalf("after commit live = %d, want 2", s.LiveVectors())
	}
}

func TestAbortWithoutAvoidanceReclaims(t *testing.T) {
	s := NewScheduler(Options{K: 2})
	mustAccept(t, s, "W1[v]") // T1 exists, pinned on v
	mustAccept(t, s, "W2[v]") // T2 takes over; T1 unpinned but not done
	if s.LiveVectors() != 3 {
		t.Fatalf("live = %d, want 3", s.LiveVectors())
	}
	s.Abort(1, 0)
	if s.LiveVectors() != 2 {
		t.Fatalf("after abort live = %d, want 2", s.LiveVectors())
	}
}

func TestVirtualTransactionImmutable(t *testing.T) {
	s := NewScheduler(Options{K: 3})
	mustAccept(t, s, "R1[x] W1[x] R2[x] W2[x] R3[y] W3[y]")
	if got := s.Vector(0).String(); got != "<0,*,*>" {
		t.Fatalf("TS(0) = %s, want <0,*,*>", got)
	}
}

func TestTraceEvents(t *testing.T) {
	var assigns, encodes int
	s := NewScheduler(Options{K: 2, Trace: func(e Event) {
		switch e.Kind {
		case EvAssign:
			assigns++
		case EvEncode:
			encodes++
		}
	}})
	mustAccept(t, s, "W1[x] W2[x]")
	if assigns != 2 || encodes != 2 {
		t.Fatalf("assigns=%d encodes=%d, want 2 and 2", assigns, encodes)
	}
}

func TestSchedulerPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewScheduler(Options{K: 0})
}

func TestSerialOrderPanicsOnVirtual(t *testing.T) {
	s := NewScheduler(Options{K: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.SerialOrder([]int{0, 1})
}

// randomLog produces a random multi-step log over nTxns transactions and
// items, with ops per transaction up to q.
func randomLog(rng *rand.Rand, nTxns, q, nItems int) *oplog.Log {
	items := make([]string, nItems)
	for i := range items {
		items[i] = string(rune('a' + i))
	}
	var ops []oplog.Op
	for t := 1; t <= nTxns; t++ {
		n := 1 + rng.Intn(q)
		for o := 0; o < n; o++ {
			ops = append(ops, oplog.NewOp(t, oplog.Kind(rng.Intn(2)), items[rng.Intn(nItems)]))
		}
	}
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return oplog.NewLog(ops...)
}

// randomTwoStepLog produces a random two-step log (R_i then W_i over item
// sets of at most maxSet items) — the paper's analysis model.
func randomTwoStepLog(rng *rand.Rand, nTxns, nItems, maxSet int) *oplog.Log {
	items := make([]string, nItems)
	for i := range items {
		items[i] = string(rune('a' + i))
	}
	pick := func() []string {
		n := 1 + rng.Intn(maxSet)
		out := make([]string, n)
		for i := range out {
			out[i] = items[rng.Intn(nItems)]
		}
		return out
	}
	type pend struct{ r, w oplog.Op }
	var pends []pend
	for t := 1; t <= nTxns; t++ {
		pends = append(pends, pend{oplog.R(t, pick()...), oplog.W(t, pick()...)})
	}
	var ops []oplog.Op
	emitted := make([]int, len(pends)) // 0: nothing, 1: read, 2: both
	for len(ops) < 2*len(pends) {
		i := rng.Intn(len(pends))
		switch emitted[i] {
		case 0:
			ops = append(ops, pends[i].r)
			emitted[i] = 1
		case 1:
			ops = append(ops, pends[i].w)
			emitted[i] = 2
		}
	}
	return oplog.NewLog(ops...)
}

// Theorem 2: every log accepted by MT(k) is D-serializable (its dependency
// digraph is acyclic), for various k and op shapes.
func TestTheorem2AcceptedLogsAreDSR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	accepted := 0
	for trial := 0; trial < 2000; trial++ {
		k := 1 + rng.Intn(4)
		l := randomLog(rng, 2+rng.Intn(3), 3, 2+rng.Intn(2))
		s := NewScheduler(Options{K: k})
		// Run to first rejection; the accepted prefix must be DSR.
		n := 0
		for _, op := range l.Ops {
			if s.Step(op).Verdict == Reject {
				break
			}
			n++
		}
		if n == 0 {
			continue
		}
		accepted++
		g, _ := l.Prefix(n).DependencyGraph()
		if g.HasCycle() {
			t.Fatalf("accepted prefix has cyclic dependencies: %v", l.Prefix(n))
		}
	}
	if accepted < 100 {
		t.Fatalf("only %d informative trials", accepted)
	}
}

// The serialization order extracted from the vectors respects every direct
// dependency of an accepted log.
func TestSerialOrderRespectsDependencies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for trial := 0; trial < 1000; trial++ {
		l := randomTwoStepLog(rng, 3, 2, 2)
		s := NewScheduler(Options{K: 3})
		if ok, _ := s.AcceptLog(l); !ok {
			continue
		}
		checked++
		order := s.SerialOrder(l.Transactions())
		pos := map[int]int{}
		for p, txn := range order {
			pos[txn] = p
		}
		g, ids := l.DependencyGraph()
		for i := range ids {
			for _, j := range g.Succ(i) {
				if pos[ids[i]] >= pos[ids[j]] {
					t.Fatalf("log %v: dependency %d->%d violated by order %v",
						l, ids[i], ids[j], order)
				}
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d accepted logs checked", checked)
	}
}

// Lemma 4 / Theorem 3: with k = 2q the 2q-th element is never set, and
// MT(2q-1) accepts exactly the same two-step logs as MT(2q) and beyond.
func TestTheorem3VectorSizeSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const q = 2 // two-step model
	for trial := 0; trial < 500; trial++ {
		l := randomTwoStepLog(rng, 3, 3, 1)
		s := NewScheduler(Options{K: 2 * q})
		okSat, _ := s.AcceptLog(l)
		// Lemma 4: the 2q-th element stays undefined for every transaction.
		for txn, v := range s.Snapshot() {
			if v.Elem(2 * q).Defined {
				t.Fatalf("log %v: TS(%d,%d) was set", l, txn, 2*q)
			}
		}
		ok3 := Accepts(2*q-1, l)
		ok5 := Accepts(2*q+1, l)
		if ok3 != okSat || ok5 != okSat {
			t.Fatalf("log %v: MT(3)=%v MT(4)=%v MT(5)=%v", l, ok3, okSat, ok5)
		}
	}
}

// Degree of concurrency grows in the examples: MT(2) accepts Example 1's
// log while MT(1) rejects it; and there are logs MT(1) accepts that MT(3)
// rejects (the classes are incomparable, Section III-C).
func TestConcurrencyClassesIncomparable(t *testing.T) {
	ex1 := oplog.MustParse("W1[x] W1[y] R3[x] R2[y] W3[y]")
	if Accepts(1, ex1) {
		t.Error("MT(1) unexpectedly accepts Example 1")
	}
	if !Accepts(2, ex1) {
		t.Error("MT(2) rejects Example 1")
	}
	// Search for a witness accepted by MT(1) but rejected by MT(3).
	rng := rand.New(rand.NewSource(3))
	found := false
	for trial := 0; trial < 20000 && !found; trial++ {
		l := randomTwoStepLog(rng, 3, 2, 2)
		if Accepts(1, l) && !Accepts(3, l) {
			found = true
		}
	}
	if !found {
		t.Error("no witness log in TO(1) \\ TO(3) found")
	}
}

// Property: acceptance is deterministic — the same log always produces the
// same decisions and final vectors.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLog(rng, 3, 3, 2)
		s1 := NewScheduler(Options{K: 3})
		s2 := NewScheduler(Options{K: 3})
		ok1, at1 := s1.AcceptLog(l)
		ok2, at2 := s2.AcceptLog(l)
		if ok1 != ok2 || at1 != at2 {
			return false
		}
		a, b := s1.Snapshot(), s2.Snapshot()
		if len(a) != len(b) {
			return false
		}
		for txn, v := range a {
			if b[txn] == nil || v.String() != b[txn].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: once TS(i) < TS(j) is established it never flips, over the
// whole run of any log (Theorem 2's monotonicity argument).
func TestQuickEstablishedRelationsAreStable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomLog(rng, 4, 3, 3)
		s := NewScheduler(Options{K: 4})
		type rel struct{ a, b int }
		established := map[rel]bool{}
		txns := l.Transactions()
		for _, op := range l.Ops {
			if s.Step(op).Verdict == Reject {
				break
			}
			for _, a := range txns {
				for _, b := range txns {
					if a == b {
						continue
					}
					if established[rel{a, b}] && !s.less(a, b) {
						return false
					}
					if s.less(a, b) {
						established[rel{a, b}] = true
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Monotonic-encoding ablation: Lamport-style element values eliminate the
// serial-corner rejections but break Example 1 (T2 and T3 no longer share
// an element, so the late dependency aborts).
func TestMonotonicEncodingAblation(t *testing.T) {
	// (a) Example 1 is rejected under monotonic encoding.
	mono := NewScheduler(Options{K: 2, MonotonicEncoding: true})
	ok, _ := mono.AcceptLog(oplog.MustParse("W1[x] W1[y] R3[x] R2[y] W3[y]"))
	if ok {
		t.Error("monotonic MT(2) unexpectedly accepts Example 1")
	}
	// (b) Serial multi-step executions are never rejected.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		s := NewScheduler(Options{K: 3, MonotonicEncoding: true})
		nTxns := 2 + rng.Intn(4)
		for txn := 1; txn <= nTxns; txn++ {
			q := 1 + rng.Intn(4)
			for o := 0; o < q; o++ {
				op := oplog.NewOp(txn, oplog.Kind(rng.Intn(2)), string(rune('a'+rng.Intn(3))))
				if d := s.Step(op); d.Verdict == Reject {
					t.Fatalf("serial execution rejected %v under monotonic encoding", op)
				}
			}
		}
	}
	// (c) The faithful (+1) encoding rejects some serial executions — the
	// corner the ablation removes. Witness found by search.
	found := false
	for trial := 0; trial < 5000 && !found; trial++ {
		seed := rand.New(rand.NewSource(int64(trial)))
		s := NewScheduler(Options{K: 3})
		rejected := false
	txns:
		for txn := 1; txn <= 4; txn++ {
			q := 1 + seed.Intn(4)
			for o := 0; o < q; o++ {
				op := oplog.NewOp(txn, oplog.Kind(seed.Intn(2)), string(rune('a'+seed.Intn(3))))
				if d := s.Step(op); d.Verdict == Reject {
					rejected = true
					break txns
				}
			}
		}
		if rejected {
			found = true
		}
	}
	if !found {
		t.Error("no serial rejection witness found for the faithful encoding")
	}
}
