package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/oplog"
)

// TestEveryDisciplineExportsWatermarks is the regression guard for the
// engine's durability contract: every Engine instantiation must export
// monotone counter-consumption watermarks and honour raise-only
// seeding, so a new discipline (or a new adapter built on one) cannot
// ship without the WAL hooks the durable runtime relies on.
func TestEveryDisciplineExportsWatermarks(t *testing.T) {
	for _, d := range []Discipline{Coarse, StripedLocks} {
		name := "coarse"
		if d == StripedLocks {
			name = "striped"
		}
		t.Run(name, func(t *testing.T) {
			e := New(Options{K: 1}, d)
			if lo, hi := e.Watermarks(); lo != 0 || hi != 1 {
				t.Fatalf("fresh watermarks = (%d,%d), want (0,1)", lo, hi)
			}
			// Burn counters: K=1 writes on one item allocate distinct
			// upper values for each new transaction.
			for i := 1; i <= 4; i++ {
				if v := e.Step(oplog.W(i, "x")); v.Verdict != core.Accept {
					t.Fatalf("W(%d,x) verdict %v", i, v.Verdict)
				}
			}
			lo, hi := e.Watermarks()
			if hi < 4 {
				t.Fatalf("upper watermark %d did not advance past consumption", hi)
			}
			// Raise-only: seeding above lifts, seeding below is a no-op.
			e.RaiseWatermarks(lo+10, hi+10)
			if l2, h2 := e.Watermarks(); l2 != lo+10 || h2 != hi+10 {
				t.Fatalf("raise to (%d,%d) gave (%d,%d)", lo+10, hi+10, l2, h2)
			}
			e.RaiseWatermarks(0, 0)
			if l3, h3 := e.Watermarks(); l3 != lo+10 || h3 != hi+10 {
				t.Fatalf("raise-only violated: (%d,%d) after seeding (0,0)", l3, h3)
			}
		})
	}
}
