package engine

import (
	"math/rand"
	"testing"

	. "repro/internal/core"
)

func TestTablePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVectorTable(0)
}

func TestTableT0Installed(t *testing.T) {
	tab := NewVectorTable(3)
	if got := tab.Vector(0).String(); got != "<0,*,*>" {
		t.Fatalf("TS(0) = %s", got)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestTableSetSelf(t *testing.T) {
	tab := NewVectorTable(2)
	if !tab.Set(5, 5, false) {
		t.Fatal("Set(i,i) must succeed")
	}
	if tab.Vector(5).DefinedCount() != 0 {
		t.Fatal("Set(i,i) must not assign")
	}
}

func TestTableCountersAndClock(t *testing.T) {
	tab := NewVectorTable(1)
	tab.Set(0, 1, false) // ucount-assign
	tab.Set(0, 2, false)
	lo, hi := tab.Counters()
	if lo != 0 || hi != 3 {
		t.Fatalf("counters = (%d,%d)", lo, hi)
	}
	if tab.Clock(1) != 2 {
		t.Fatalf("clock = %d", tab.Clock(1))
	}
}

func TestTableLowerCounter(t *testing.T) {
	tab := NewVectorTable(1)
	tab.Seed(7, Int(5))
	// Encoding TS(9) < TS(7) with TS(9) undefined uses the lower counter.
	if !tab.Set(9, 7, false) {
		t.Fatal("Set failed")
	}
	e := tab.Vector(9).Elem(1)
	if !e.Defined || e.V >= 5 {
		t.Fatalf("TS(9,1) = %v, want < 5", e)
	}
	lo, _ := tab.Counters()
	if lo >= 0 {
		t.Fatalf("lcount = %d, want < 0", lo)
	}
}

func TestTableDrop(t *testing.T) {
	tab := NewVectorTable(2)
	tab.Set(0, 3, false)
	tab.Drop(3)
	if tab.Len() != 1 {
		t.Fatalf("Len = %d after drop", tab.Len())
	}
	// A re-created vector starts undefined.
	if tab.Vector(3).DefinedCount() != 0 {
		t.Fatal("dropped vector left residue")
	}
}

func TestTableOnAssignHook(t *testing.T) {
	tab := NewVectorTable(2)
	var calls int
	tab.OnAssign = func(id, pos int, val int64) { calls++ }
	tab.Set(0, 1, false) // one assignment
	tab.Set(1, 2, false) // one assignment (Unknown at column 1)
	if calls != 2 {
		t.Fatalf("OnAssign calls = %d", calls)
	}
}

func TestReseedFirstDominates(t *testing.T) {
	tab := NewVectorTable(3)
	tab.Set(0, 1, false) // TS(1)=<1,*,*>
	tab.Set(1, 2, false) // TS(2)=<2,*,*>
	seed := tab.ReseedFirst(1, tab.Vector(2).Elem(1).V)
	if seed <= 2 {
		t.Fatalf("seed = %d, want > blocker's 2", seed)
	}
	if !tab.Less(2, 1) {
		t.Fatal("reseeded vector must dominate its blocker")
	}
	if got := tab.Vector(1).DefinedCount(); got != 1 {
		t.Fatalf("reseeded vector has %d defined elements", got)
	}
}

// ReseedFirst at k=1 must allocate through the counter so later counter
// assignments never collide (the bug found by the lifecycle fuzzer).
func TestReseedFirstCounterColumn(t *testing.T) {
	tab := NewVectorTable(1)
	tab.Set(0, 1, false) // TS(1)=<1>
	tab.Set(1, 2, false) // TS(2)=<2>
	seed := tab.ReseedFirst(3, tab.Vector(2).Elem(1).V)
	// A later counter allocation must be distinct from the seed.
	tab.Set(2, 4, false)
	v4 := tab.Vector(4).Elem(1).V
	if v4 == seed {
		t.Fatalf("counter collision: seed %d == new allocation %d", seed, v4)
	}
	if !tab.Less(2, 3) {
		t.Fatal("seed does not dominate blocker")
	}
}

func TestMonotonicUpper(t *testing.T) {
	tab := NewVectorTable(3)
	tab.Monotonic = true
	tab.Set(0, 1, false) // TS(1,1)=1
	tab.Set(1, 2, false) // TS(2,1)=2
	// Encoding against the OLD holder T0 must still produce a fresh value
	// above the column clock, not 0+1.
	tab.Set(0, 3, false)
	got := tab.Vector(3).Elem(1)
	if !got.Defined || got.V <= 2 {
		t.Fatalf("monotonic upper = %v, want > 2", got)
	}
}

func TestPlainUpperIsRelative(t *testing.T) {
	tab := NewVectorTable(3)
	tab.Set(0, 1, false) // TS(1,1)=1
	tab.Set(1, 2, false) // TS(2,1)=2
	tab.Set(0, 3, false) // relative rule: TS(3,1) = TS(0,1)+1 = 1
	got := tab.Vector(3).Elem(1)
	if !got.Defined || got.V != 1 {
		t.Fatalf("relative upper = %v, want 1 (the Example 1 behaviour)", got)
	}
}

func TestShiftEncodeCopiesUpToLastColumn(t *testing.T) {
	tab := NewVectorTable(2)
	tab.Seed(1, Int(1), Int(3))
	tab.SetCounters(0, 5) // seeded column-k value 3 must stay below ucount
	if !tab.Set(1, 2, true) {
		t.Fatal("Set failed")
	}
	// The shift copies the prefix (column 1) and counter-encodes at k.
	if got := tab.Vector(2).String(); got != "<1,5>" {
		t.Fatalf("TS(2) = %v, want <1,5>", got)
	}
	if !tab.Less(1, 2) {
		t.Fatal("dependency not established")
	}
}

func TestSetIdenticalVectorsPanics(t *testing.T) {
	tab := NewVectorTable(1)
	tab.Seed(7, Int(4))
	tab.Seed(8, Int(4)) // API misuse: identical fully-defined vectors
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.Set(7, 8, false)
}

// Property: the table's Set never breaks an established relation, under
// random mixed usage including shifts and reseeds.
func TestQuickTableRelationsStable(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		tab := NewVectorTable(k)
		type rel struct{ a, b int }
		established := map[rel]bool{}
		check := func() {
			for a := 0; a <= 5; a++ {
				for b := 0; b <= 5; b++ {
					if a == b {
						continue
					}
					if established[rel{a, b}] && !tab.Less(a, b) {
						t.Fatalf("seed %d: relation %d<%d lost", seed, a, b)
					}
					if tab.Less(a, b) {
						established[rel{a, b}] = true
					}
				}
			}
		}
		for step := 0; step < 30; step++ {
			a, b := rng.Intn(6), rng.Intn(6)
			switch rng.Intn(10) {
			case 0:
				// Reseed target past a blocker with a defined element 1;
				// relations INTO the target survive; relations OUT of it
				// are void (the incarnation restarts), so reset them.
				if a != 0 && tab.Vector(b).Elem(1).Defined {
					tab.ReseedFirst(a, tab.Vector(b).Elem(1).V)
					for x := 0; x <= 5; x++ {
						delete(established, rel{a, x})
					}
				}
			default:
				// Nothing is ever ordered before T_0 (protocol flow).
				if b == 0 {
					continue
				}
				// Identical fully-defined vectors only arise through raw
				// table access (the lower counter can mint TS(0)'s value
				// for an unassigned id); Set rejects them by panic, and
				// the protocol never produces them — skip.
				if rel, _ := tab.Vector(a).Compare(tab.Vector(b)); rel == Equal &&
					tab.Vector(a).DefinedCount() == k {
					continue
				}
				tab.Set(a, b, rng.Intn(2) == 0)
			}
			check()
		}
	}
}
