// Package lock implements the two-phase-locking baseline: a blocking lock
// manager with shared/exclusive modes, waits-for-graph deadlock detection,
// and a strict-2PL runtime scheduler (locks held until commit or abort,
// writes published atomically at commit). 2PL is the paper's primary
// comparison class (Fig. 4).
package lock

import (
	"fmt"
	"sync"

	"repro/internal/sched"
	"repro/internal/storage"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

// lockState tracks the holders of one item's lock.
type lockState struct {
	holders map[int]Mode // txn -> strongest mode held
}

func (ls *lockState) compatible(txn int, mode Mode) bool {
	for t, m := range ls.holders {
		if t == txn {
			continue
		}
		if mode == Exclusive || m == Exclusive {
			return false
		}
	}
	return true
}

// Manager is a blocking lock manager with deadlock detection: a request
// that would close a cycle in the waits-for graph aborts immediately
// (the requester is the victim).
type Manager struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items map[string]*lockState
	// waitsFor[t] is the set of transactions t currently waits for.
	waitsFor  map[int]map[int]bool
	deadlocks int64
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	m := &Manager{
		items:    make(map[string]*lockState),
		waitsFor: make(map[int]map[int]bool),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Deadlocks returns the number of requests aborted by deadlock detection.
func (m *Manager) Deadlocks() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.deadlocks
}

func (m *Manager) state(item string) *lockState {
	ls := m.items[item]
	if ls == nil {
		ls = &lockState{holders: make(map[int]Mode)}
		m.items[item] = ls
	}
	return ls
}

// wouldDeadlock reports whether txn waiting for the given holders closes a
// cycle in the waits-for graph.
func (m *Manager) wouldDeadlock(txn int, holders map[int]Mode) bool {
	// DFS from each blocking holder; if we can reach txn, adding
	// txn -> holder would close a cycle.
	var stack []int
	seen := map[int]bool{}
	for h := range holders {
		if h != txn {
			stack = append(stack, h)
		}
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t == txn {
			return true
		}
		if seen[t] {
			continue
		}
		seen[t] = true
		for next := range m.waitsFor[t] {
			stack = append(stack, next)
		}
	}
	return false
}

// Acquire blocks until txn holds item in at least the requested mode, or
// returns an error wrapping sched.ErrAbort if granting the wait would
// deadlock. Lock upgrades (Shared held, Exclusive requested) are
// supported.
func (m *Manager) Acquire(txn int, item string, mode Mode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.state(item)
	for {
		if held, ok := ls.holders[txn]; ok && (held == Exclusive || mode == Shared) {
			return nil // already strong enough
		}
		if ls.compatible(txn, mode) {
			if mode == Exclusive {
				ls.holders[txn] = Exclusive
			} else if _, held := ls.holders[txn]; !held {
				ls.holders[txn] = Shared
			}
			delete(m.waitsFor, txn)
			return nil
		}
		// Blocked: record waits-for edges and check for a cycle.
		if m.wouldDeadlock(txn, ls.holders) {
			m.deadlocks++
			delete(m.waitsFor, txn)
			return sched.Abort(txn, 0, "deadlock")
		}
		w := map[int]bool{}
		for h := range ls.holders {
			if h != txn {
				w[h] = true
			}
		}
		m.waitsFor[txn] = w
		m.cond.Wait()
		delete(m.waitsFor, txn)
		ls = m.state(item)
	}
}

// ReleaseAll releases every lock txn holds and wakes all waiters.
func (m *Manager) ReleaseAll(txn int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ls := range m.items {
		delete(ls.holders, txn)
	}
	delete(m.waitsFor, txn)
	m.cond.Broadcast()
}

// HeldBy returns the mode txn holds on item and whether it holds any.
func (m *Manager) HeldBy(txn int, item string) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ls, ok := m.items[item]; ok {
		mode, held := ls.holders[txn]
		return mode, held
	}
	return 0, false
}

// TwoPL is the strict two-phase-locking runtime scheduler.
type TwoPL struct {
	mgr   *Manager
	store *storage.Store

	mu   sync.Mutex
	txns map[int]*txnState
}

type txnState struct {
	writes map[string]int64
}

// NewTwoPL returns a strict-2PL scheduler over the store.
func NewTwoPL(store *storage.Store) *TwoPL {
	return &TwoPL{mgr: NewManager(), store: store, txns: make(map[int]*txnState)}
}

// Name implements sched.Scheduler.
func (t *TwoPL) Name() string { return "2PL" }

// Manager exposes the lock manager (deadlock statistics).
func (t *TwoPL) Manager() *Manager { return t.mgr }

// Begin implements sched.Scheduler.
func (t *TwoPL) Begin(txn int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.txns[txn] = &txnState{writes: make(map[string]int64)}
}

func (t *TwoPL) state(txn int) *txnState {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.txns[txn]
	if st == nil {
		panic(fmt.Sprintf("lock: operation on transaction %d without Begin", txn))
	}
	return st
}

// Read implements sched.Scheduler: acquires a shared lock (blocking).
func (t *TwoPL) Read(txn int, item string) (int64, error) {
	st := t.state(txn)
	t.mu.Lock()
	if v, ok := st.writes[item]; ok {
		t.mu.Unlock()
		return v, nil
	}
	t.mu.Unlock()
	if err := t.mgr.Acquire(txn, item, Shared); err != nil {
		return 0, err
	}
	return t.store.Get(item), nil
}

// Write implements sched.Scheduler: acquires an exclusive lock (blocking)
// and buffers the value.
func (t *TwoPL) Write(txn int, item string, v int64) error {
	st := t.state(txn)
	if err := t.mgr.Acquire(txn, item, Exclusive); err != nil {
		return err
	}
	t.mu.Lock()
	st.writes[item] = v
	t.mu.Unlock()
	return nil
}

// Commit implements sched.Scheduler: publishes the writes, then releases
// every lock (strictness: no lock is released before commit).
func (t *TwoPL) Commit(txn int) error {
	t.mu.Lock()
	st := t.txns[txn]
	delete(t.txns, txn)
	t.mu.Unlock()
	if st != nil {
		t.store.Apply(st.writes)
	}
	t.mgr.ReleaseAll(txn)
	return nil
}

// Abort implements sched.Scheduler.
func (t *TwoPL) Abort(txn int) {
	t.mu.Lock()
	delete(t.txns, txn)
	t.mu.Unlock()
	t.mgr.ReleaseAll(txn)
}
