package lock

import (
	"errors"
	"sync"
	"testing"
	"time"

	"math/rand"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/workload"
	"sync/atomic"
)

func TestSharedLocksCompatible(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, "x", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, "x", Shared); err != nil {
		t.Fatal(err)
	}
	if _, held := m.HeldBy(2, "x"); !held {
		t.Fatal("T2 should hold the shared lock")
	}
}

func TestExclusiveBlocksAndWakes(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, "x", Exclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- m.Acquire(2, "x", Exclusive) }()
	select {
	case <-acquired:
		t.Fatal("T2 acquired while T1 held exclusive")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("T2 acquire: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("T2 never woke up")
	}
}

func TestUpgrade(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, "x", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, "x", Exclusive); err != nil {
		t.Fatalf("sole-holder upgrade failed: %v", err)
	}
	if mode, _ := m.HeldBy(1, "x"); mode != Exclusive {
		t.Fatal("upgrade did not stick")
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, "x", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, "y", Exclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(1, "y", Exclusive) }() // T1 waits for T2
	time.Sleep(20 * time.Millisecond)
	// T2 requesting x closes the cycle: must abort immediately.
	err := m.Acquire(2, "x", Exclusive)
	if !errors.Is(err, sched.ErrAbort) {
		t.Fatalf("expected deadlock abort, got %v", err)
	}
	if m.Deadlocks() != 1 {
		t.Fatalf("Deadlocks = %d", m.Deadlocks())
	}
	// Release T2's locks: T1 proceeds.
	m.ReleaseAll(2)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("T1: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("T1 stuck after victim released")
	}
}

func TestUpgradeDeadlock(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, "x", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, "x", Shared); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(1, "x", Exclusive) }() // T1 waits for T2
	time.Sleep(20 * time.Millisecond)
	err := m.Acquire(2, "x", Exclusive) // closes the upgrade cycle
	if !errors.Is(err, sched.ErrAbort) {
		t.Fatalf("expected upgrade deadlock abort, got %v", err)
	}
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatalf("T1: %v", err)
	}
}

func TestTwoPLCommitPublishesAndReleases(t *testing.T) {
	st := storage.New()
	s := NewTwoPL(st)
	s.Begin(1)
	if _, err := s.Read(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, "x", 42); err != nil {
		t.Fatal(err)
	}
	if st.Get("x") != 0 {
		t.Fatal("write visible before commit")
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	if st.Get("x") != 42 {
		t.Fatal("write lost")
	}
	// Lock released: another txn can write immediately.
	s.Begin(2)
	if err := s.Write(2, "x", 43); err != nil {
		t.Fatal(err)
	}
	s.Abort(2)
	if st.Get("x") != 42 {
		t.Fatal("aborted write leaked")
	}
}

func TestTwoPLReadYourOwnWrite(t *testing.T) {
	s := NewTwoPL(storage.New())
	s.Begin(1)
	if err := s.Write(1, "x", 9); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read(1, "x")
	if err != nil || v != 9 {
		t.Fatalf("read own write: v=%d err=%v", v, err)
	}
	s.Abort(1)
}

func TestTwoPLConcurrentTransfers(t *testing.T) {
	st := storage.New()
	st.Set("a", 1000)
	st.Set("b", 1000)
	s := NewTwoPL(st)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for attempt := 0; ; attempt++ {
				s.Begin(id)
				va, err := s.Read(id, "a")
				if err == nil {
					var vb int64
					vb, err = s.Read(id, "b")
					if err == nil {
						if err = s.Write(id, "a", va-1); err == nil {
							if err = s.Write(id, "b", vb+1); err == nil {
								if err = s.Commit(id); err == nil {
									return
								}
							}
						}
					}
				}
				s.Abort(id)
			}
		}(w + 1)
	}
	wg.Wait()
	if got := st.Sum([]string{"a", "b"}); got != 2000 {
		t.Fatalf("total = %d, want 2000", got)
	}
	if st.Get("a") != 1000-8 {
		t.Fatalf("a = %d, want %d", st.Get("a"), 1000-8)
	}
}

// TestTwoPLStormOverShardedStore drives strict 2PL over the sharded
// store with zipf-skewed read/write storms from many goroutines: the
// striped storage path must preserve 2PL's serializable outcomes
// (checked via a running per-item counter invariant) with no races and
// no lost deadlock wakeups (watchdog via test timeout).
func TestTwoPLStormOverShardedStore(t *testing.T) {
	st := storage.New()
	s := NewTwoPL(st)
	items := make([]string, 24)
	for i := range items {
		items[i] = workload.ItemName(i)
	}
	var next atomic.Int64
	var committed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(items)-1))
			for a := 0; a < 40; a++ {
				id := int(next.Add(1))
				s.Begin(id)
				// Increment two zipf-picked counters read-modify-write;
				// under serializability no increment is ever lost.
				ok := true
				for n := 0; n < 2 && ok; n++ {
					x := items[zipf.Uint64()]
					v, err := s.Read(id, x)
					if err != nil {
						ok = false
						break
					}
					if err := s.Write(id, x, v+1); err != nil {
						ok = false
					}
				}
				if ok && s.Commit(id) == nil {
					committed.Add(2)
				} else {
					s.Abort(id)
				}
			}
		}(int64(w) * 1031)
	}
	wg.Wait()
	if committed.Load() == 0 {
		t.Fatal("no transaction committed")
	}
	if sum := st.Sum(items); sum != committed.Load() {
		t.Fatalf("sum of counters %d, want %d (lost update)", sum, committed.Load())
	}
}
