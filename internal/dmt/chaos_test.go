package dmt

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/oplog"
)

// A crashed site schedules nothing: operations of transactions homed
// there — and operations needing objects homed there — fail fast with an
// Unavailable verdict naming the site, never with a Reject.
func TestUnavailableVerdictOnCrashedSite(t *testing.T) {
	c := NewCluster(Options{
		K: 2, Sites: 2,
		HomeOfItem: func(string) int { return 1 },
	})
	c.CrashSite(1, false)
	if c.SiteUp(1) {
		t.Fatal("crashed site reports up")
	}
	// Txn 1 is homed at site 1 (txn mod sites): acting site is down.
	d := c.Step(oplog.R(1, "x"))
	if d.Verdict != core.Unavailable || d.Site != 1 {
		t.Fatalf("acting-site-down decision: %+v", d)
	}
	// Txn 2 is homed at site 0, but item x lives at site 1.
	d = c.Step(oplog.W(2, "x"))
	if d.Verdict != core.Unavailable || d.Site != 1 {
		t.Fatalf("item-site-down decision: %+v", d)
	}
	if c.UnavailableCount() < 2 {
		t.Fatalf("UnavailableCount = %d", c.UnavailableCount())
	}
	c.RecoverSite(1)
	if d := c.Step(oplog.R(1, "x")); d.Verdict != core.Accept {
		t.Fatalf("post-recovery step: %+v", d)
	}
}

// A crash loses the volatile item index; recovery replays the journal
// and must restore RT/WT exactly.
func TestRecoveryRebuildsItemIndex(t *testing.T) {
	c := NewCluster(Options{
		K: 2, Sites: 2,
		HomeOfTxn:  func(txn int) int { return 0 },
		HomeOfItem: func(string) int { return 1 },
	})
	for _, op := range []oplog.Op{oplog.W(5, "x"), oplog.R(6, "x"), oplog.W(7, "y")} {
		if d := c.Step(op); d.Verdict != core.Accept {
			t.Fatalf("%v rejected: %+v", op, d)
		}
	}
	if w := c.WTHolder("x"); w != 5 {
		t.Fatalf("WT(x) = %d before crash", w)
	}
	c.CrashSite(1, false)
	if w := c.WTHolder("x"); w != 0 {
		t.Fatalf("WT(x) = %d survived the crash (index should be volatile)", w)
	}
	c.RecoverSite(1)
	if w := c.WTHolder("x"); w != 5 {
		t.Fatalf("WT(x) = %d after recovery, want 5", w)
	}
	if w := c.WTHolder("y"); w != 7 {
		t.Fatalf("WT(y) = %d after recovery, want 7", w)
	}
	// The rebuilt index keeps deciding: a conflicting write against the
	// replayed RT/WT must behave as if the crash never happened.
	if d := c.Step(oplog.W(8, "x")); d.Verdict == core.Unavailable {
		t.Fatalf("post-recovery write unavailable: %+v", d)
	}
}

// Counter drift is the dangerous crash mode: the site restarts with
// zeroed counters and, without re-validation, would re-issue k-th-column
// values it already allocated. RecoverSite must advance the counters
// past every live element the site ever allocated.
func TestCounterRevalidationAfterDrift(t *testing.T) {
	c := NewCluster(Options{K: 1, Sites: 3})
	// Site-1 transactions (txn mod 3 == 1) burn through site 1's upper
	// counter on item y; txn 2 (site 2) holds a *small* element on item z,
	// so post-crash allocations bounded by z's holder would restart low.
	for _, txn := range []int{1, 4, 7, 10, 13} {
		if d := c.Step(oplog.W(txn, "y")); d.Verdict != core.Accept {
			t.Fatalf("W%d[y] rejected", txn)
		}
	}
	if d := c.Step(oplog.W(2, "z")); d.Verdict != core.Accept {
		t.Fatal("W2[z] rejected")
	}
	c.CrashSite(1, true) // drift: site 1's counters reset
	c.RecoverSite(1)
	// Fresh site-1 transactions allocate on the low-bounded item z; their
	// elements must not collide with the pre-crash allocations on y.
	for _, txn := range []int{16, 19} {
		if d := c.Step(oplog.W(txn, "z")); d.Verdict != core.Accept {
			t.Fatalf("post-recovery W%d[z] rejected", txn)
		}
	}
	seen := map[int64]int{}
	for _, txn := range []int{1, 4, 7, 10, 13, 2, 16, 19} {
		e := c.Vector(txn).Elem(1)
		if !e.Defined {
			t.Fatalf("TS(%d,1) undefined", txn)
		}
		if prev, dup := seen[e.V]; dup {
			t.Fatalf("duplicate k-th element %d for T%d and T%d (counter re-validation failed)", e.V, prev, txn)
		}
		seen[e.V] = txn
	}
}

// Without re-validation the drift scenario above really would collide:
// the same schedule with a manual counter reset (no recovery) produces a
// duplicate. This guards the test itself against going vacuous.
func TestDriftWithoutRevalidationWouldCollide(t *testing.T) {
	c := NewCluster(Options{K: 1, Sites: 3})
	for _, txn := range []int{1, 4, 7, 10, 13} {
		c.Step(oplog.W(txn, "y"))
	}
	c.Step(oplog.W(2, "z"))
	// Simulate the un-recovered drift: reset counters, skip RecoverSite.
	c.counters.Reset(1)
	c.Step(oplog.W(16, "z"))
	seen := map[int64]bool{}
	dup := false
	for _, txn := range []int{1, 4, 7, 10, 13, 2, 16} {
		if e := c.Vector(txn).Elem(1); e.Defined {
			if seen[e.V] {
				dup = true
			}
			seen[e.V] = true
		}
	}
	if !dup {
		t.Fatal("drift without re-validation produced no collision; the revalidation test proves nothing")
	}
}

// Satellite: concurrent SyncCounters under load while a site crashes and
// recovers mid-sync. Run with -race. The k-th column must stay globally
// unique throughout — in particular SyncCounters must never move a
// counter backwards while allocations race with it.
func TestConcurrentSyncCountersUnderChaos(t *testing.T) {
	c := NewCluster(Options{K: 1, Sites: 4})
	const workers = 6
	const txnsPer = 60
	items := []string{"a", "b", "c", "d", "e", "f"}
	stop := make(chan struct{})
	var chaosWG sync.WaitGroup

	// Periodic synchronization racing with allocations.
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.SyncCounters()
			}
		}
	}()
	// Site 2 crashes and recovers continuously (fail-stop, counters kept;
	// drift recovery is exercised in TestCounterRevalidationAfterDrift).
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.CrashSite(2, false)
				time.Sleep(50 * time.Microsecond)
				c.RecoverSite(2)
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 100)))
			for i := 0; i < txnsPer; i++ {
				txn := w*txnsPer + i + 1
				for op := 0; op < 2; op++ {
					item := items[rng.Intn(len(items))]
					var o oplog.Op
					if rng.Intn(2) == 0 {
						o = oplog.R(txn, item)
					} else {
						o = oplog.W(txn, item)
					}
					d := c.Step(o)
					if d.Verdict != core.Accept {
						break // rejected or unavailable: abandon the txn
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	chaosWG.Wait()
	c.RecoverSite(2) // make sure the site ends the test up

	seen := map[int64]int{}
	for txn := 1; txn <= workers*txnsPer; txn++ {
		e := c.Vector(txn).Elem(1)
		if !e.Defined {
			continue
		}
		if prev, dup := seen[e.V]; dup {
			t.Fatalf("duplicate k-th element %d for T%d and T%d under chaos", e.V, prev, txn)
		}
		seen[e.V] = txn
	}
	if len(seen) == 0 {
		t.Fatal("no transaction got a k-th element; chaos starved the workload")
	}
}

// The injector's scheduled events drive the cluster's degraded-mode
// state machine end-to-end: crash → Unavailable verdicts naming the
// site → asynchronous recovery → normal service.
func TestTransportScheduledCrashRecovery(t *testing.T) {
	plan := fault.Plan{Name: "t", Events: []fault.Event{
		{At: 6, Kind: fault.Crash, Site: 1},
		{At: 30, Kind: fault.Recover, Site: 1},
	}}
	inj := fault.New(plan, 2, 5)
	c := NewCluster(Options{
		K: 2, Sites: 2, Transport: inj,
		HomeOfItem: func(string) int { return 0 },
	})
	sawUnavailable := false
	recovered := false
	txn := 1 // odd txns are homed at site 1
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		d := c.Step(oplog.W(txn, "x"))
		switch d.Verdict {
		case core.Unavailable:
			if d.Site != 1 {
				t.Fatalf("unavailable names site %d, want 1", d.Site)
			}
			sawUnavailable = true
		case core.Accept:
			if sawUnavailable {
				recovered = true // a site-1 txn accepted again post-crash
			}
		}
		if recovered {
			break
		}
		txn += 2
		time.Sleep(10 * time.Microsecond)
	}
	if !sawUnavailable {
		t.Fatal("scheduled crash never produced an Unavailable verdict")
	}
	if !recovered {
		t.Fatal("cluster never accepted a site-1 transaction after scheduled recovery")
	}
	if !c.SiteUp(1) {
		t.Fatal("site 1 down after recovery")
	}
	if inj.Stats().Crashes.Value() != 1 || inj.Stats().Recoveries.Value() != 1 {
		t.Fatalf("injector stats: crashes=%d recoveries=%d",
			inj.Stats().Crashes.Value(), inj.Stats().Recoveries.Value())
	}
}

// Dropped messages are transient: the same operation retried succeeds,
// and a fault leaves no partial state behind (the verdict is
// Unavailable, not Reject, so nothing was decided).
func TestDroppedMessageIsRetryable(t *testing.T) {
	inj := fault.New(fault.Plan{Name: "t", DropRate: 0.5}, 2, 11)
	c := NewCluster(Options{
		K: 2, Sites: 2,
		Transport:  inj,
		HomeOfTxn:  func(txn int) int { return 0 },
		HomeOfItem: func(string) int { return 1 }, // force cross-site traffic
	})
	accepted := false
	for try := 0; try < 200; try++ {
		d := c.Step(oplog.W(1, "x"))
		if d.Verdict == core.Reject {
			t.Fatalf("drop surfaced as Reject: %+v", d)
		}
		if d.Verdict == core.Accept {
			accepted = true
			break
		}
	}
	if !accepted {
		t.Fatal("operation never got through a 50% lossy link in 200 tries")
	}
	if inj.Stats().Dropped.Value() == 0 {
		t.Fatal("no drops at 50% loss; transport is not in the path")
	}
}
