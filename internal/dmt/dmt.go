// Package dmt implements DMT(k), the decentralized concurrency controller
// of Section V-B: MT(k) run across multiple sites.
//
// Every transaction and every data item has a home site. The timestamp
// vector of a transaction is stored at its home site; the RT(x)/WT(x)
// indices live with the item. A local scheduler processing an operation
// locks the (at most four) objects it touches — the item's index entry and
// the vectors of T_i, RT(x) and WT(x) — in a predefined linear order, so
// no deadlock can occur and no global lock synchronization is needed. The
// k-th vector elements are made globally unique without coordination by
// concatenating the allocating site's number as low-order bits
// (value = counter·S + site); local counters only advance, and an
// allocation is always bumped past the element it must outrank, which is
// the correctness-critical part of the paper's "synchronize the counters
// periodically" remark. SyncCounters implements the periodic
// synchronization itself (fairness under unbalanced load).
//
// Cross-site object accesses are tallied as messages (one request plus one
// reply), giving the message-overhead figures of the DMT(k) discussion.
package dmt

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/oplog"
)

// Options configures a DMT(k) cluster.
type Options struct {
	// K is the timestamp vector size.
	K int
	// Sites is the number of sites (>= 1).
	Sites int
	// HomeOfTxn maps a transaction to its home site (default: txn mod
	// Sites). The virtual transaction 0 lives at site 0.
	HomeOfTxn func(txn int) int
	// HomeOfItem maps an item to its home site (default: FNV hash).
	HomeOfItem func(item string) int
}

// itemEntry is the per-item index record stored at the item's home site.
type itemEntry struct {
	rt, wt int
}

// vecEntry is a transaction's vector plus its lock.
type vecEntry struct {
	mu  sync.Mutex
	vec *core.Vector
}

// site holds the locally-stored state of one site.
type site struct {
	mu    sync.Mutex
	vecs  map[int]*vecEntry
	items map[string]*itemEntry
	locks map[string]*sync.Mutex // item index-entry locks
	done  map[int]bool           // finished transactions awaiting GC
	ucnt  int64                  // local upper counter
	lcnt  int64                  // local lower counter
}

// Cluster is a DMT(k) deployment of several cooperating local schedulers.
// Step may be called concurrently from any number of goroutines.
type Cluster struct {
	opts  Options
	sites []*site

	messages    atomic.Int64 // cross-site request/reply messages
	lockRetries atomic.Int64 // optimistic re-lock rounds
	t0          *vecEntry
}

// NewCluster returns an initialized DMT(k) cluster.
func NewCluster(opts Options) *Cluster {
	if opts.K < 1 {
		panic("dmt: Options.K must be >= 1")
	}
	if opts.Sites < 1 {
		panic("dmt: Options.Sites must be >= 1")
	}
	c := &Cluster{opts: opts}
	for s := 0; s < opts.Sites; s++ {
		c.sites = append(c.sites, &site{
			vecs:  make(map[int]*vecEntry),
			items: make(map[string]*itemEntry),
			locks: make(map[string]*sync.Mutex),
			ucnt:  1,
		})
	}
	t0 := core.NewVector(opts.K)
	c.t0 = &vecEntry{vec: t0}
	c.sites[0].vecs[0] = c.t0
	// TS(0) = <0,*,...,*>: seed via a table trick — element 1 must be 0.
	c.t0.vec = core.VectorOf(seedT0(opts.K)...)
	return c
}

func seedT0(k int) []core.Elem {
	elems := make([]core.Elem, k)
	elems[0] = core.Int(0)
	return elems
}

// homeOfTxn resolves the home site of a transaction.
func (c *Cluster) homeOfTxn(txn int) int {
	if txn == 0 {
		return 0
	}
	if c.opts.HomeOfTxn != nil {
		return c.opts.HomeOfTxn(txn)
	}
	return txn % c.opts.Sites
}

// homeOfItem resolves the home site of an item.
func (c *Cluster) homeOfItem(x string) int {
	if c.opts.HomeOfItem != nil {
		return c.opts.HomeOfItem(x)
	}
	h := fnv.New32a()
	h.Write([]byte(x))
	return int(h.Sum32()) % c.opts.Sites
}

// countAccess tallies messages for touching an object homed at obj from
// the acting site.
func (c *Cluster) countAccess(acting, objHome int) {
	if acting != objHome {
		c.messages.Add(2) // request + reply
	}
}

// vecOf fetches (or creates) the vector entry of txn at its home site.
func (c *Cluster) vecOf(txn int) *vecEntry {
	s := c.sites[c.homeOfTxn(txn)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.vecs[txn]; ok {
		return e
	}
	e := &vecEntry{vec: core.NewVector(c.opts.K)}
	s.vecs[txn] = e
	return e
}

// itemOf fetches (or creates) the index entry and its lock for item x.
func (c *Cluster) itemOf(x string) (*itemEntry, *sync.Mutex) {
	s := c.sites[c.homeOfItem(x)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.items[x]; !ok {
		s.items[x] = &itemEntry{}
		s.locks[x] = &sync.Mutex{}
	}
	return s.items[x], s.locks[x]
}

// Messages returns the number of cross-site messages exchanged so far.
func (c *Cluster) Messages() int64 { return c.messages.Load() }

// LockRetries returns how many optimistic locking rounds had to restart
// because RT(x)/WT(x) changed while the sorted lock set was acquired.
func (c *Cluster) LockRetries() int64 { return c.lockRetries.Load() }

// Vector returns a copy of TS(i).
func (c *Cluster) Vector(i int) *core.Vector {
	e := c.vecOf(i)
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.vec.Clone()
}

// SyncCounters aligns every site's upper counter to the cluster maximum
// and every lower counter to the minimum — the paper's periodic
// synchronization for fairness under unbalanced load.
func (c *Cluster) SyncCounters() {
	var hi, lo int64
	for _, s := range c.sites {
		s.mu.Lock()
		if s.ucnt > hi {
			hi = s.ucnt
		}
		if s.lcnt < lo {
			lo = s.lcnt
		}
		s.mu.Unlock()
	}
	for _, s := range c.sites {
		s.mu.Lock()
		s.ucnt, s.lcnt = hi, lo
		s.mu.Unlock()
	}
}

// CounterSkew returns max-min of the sites' upper counters, for the
// fairness experiments.
func (c *Cluster) CounterSkew() int64 {
	var hi, lo int64 = -1 << 62, 1 << 62
	for _, s := range c.sites {
		s.mu.Lock()
		if s.ucnt > hi {
			hi = s.ucnt
		}
		if s.ucnt < lo {
			lo = s.ucnt
		}
		s.mu.Unlock()
	}
	return hi - lo
}

// allocUpper allocates a fresh globally-unique k-th element at the acting
// site that is strictly greater than bound: value = counter·S + site.
func (c *Cluster) allocUpper(acting int, bound int64) int64 {
	s := c.sites[acting]
	s.mu.Lock()
	defer s.mu.Unlock()
	n := int64(c.opts.Sites)
	cnt := s.ucnt
	for cnt*n+int64(acting) <= bound {
		cnt++
	}
	s.ucnt = cnt + 1
	return cnt*n + int64(acting)
}

// allocLower allocates a fresh globally-unique k-th element strictly less
// than bound.
func (c *Cluster) allocLower(acting int, bound int64) int64 {
	s := c.sites[acting]
	s.mu.Lock()
	defer s.mu.Unlock()
	n := int64(c.opts.Sites)
	cnt := s.lcnt
	for -(cnt*n + int64(acting)) >= bound {
		cnt++
	}
	s.lcnt = cnt + 1
	return -(cnt*n + int64(acting))
}

// lockKey gives every lockable object a position in the predefined linear
// order: vectors sort before item entries, then by id.
func lockKeyVec(txn int) string      { return fmt.Sprintf("v:%012d", txn) }
func lockKeyItem(item string) string { return "x:" + item }

// lockedObjects is the sorted lock set held while one operation is
// scheduled.
type lockedObjects struct {
	keys   []string
	unlock []func()
}

func (lo *lockedObjects) release() {
	// Unlock in reverse acquisition order.
	for i := len(lo.unlock) - 1; i >= 0; i-- {
		lo.unlock[i]()
	}
}

// acquire locks the item entry and the vectors of the given transactions
// in the predefined linear order.
func (c *Cluster) acquire(x string, txns []int) *lockedObjects {
	type obj struct {
		key  string
		lock func() func()
	}
	var objs []obj
	_, itemMu := c.itemOf(x)
	objs = append(objs, obj{lockKeyItem(x), func() func() {
		itemMu.Lock()
		return itemMu.Unlock
	}})
	seen := map[int]bool{}
	for _, t := range txns {
		if seen[t] {
			continue
		}
		seen[t] = true
		e := c.vecOf(t)
		objs = append(objs, obj{lockKeyVec(t), func() func() {
			e.mu.Lock()
			return e.mu.Unlock
		}})
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].key < objs[j].key })
	lo := &lockedObjects{}
	for _, o := range objs {
		lo.keys = append(lo.keys, o.key)
		lo.unlock = append(lo.unlock, o.lock())
	}
	return lo
}

// set encodes or validates TS(j) < TS(i) under the already-held locks,
// mirroring procedure Set of Algorithm 1 with site-tagged counters.
func (c *Cluster) set(acting, j, i int, vj, vi *core.Vector) bool {
	if j == i {
		return true
	}
	rel, m := vj.Compare(vi)
	switch rel {
	case core.Less:
		return true
	case core.Greater:
		return false
	case core.Equal:
		if m == c.opts.K {
			v1 := c.allocUpper(acting, maxDefined(vj, vi))
			v2 := c.allocUpper(acting, v1)
			vj.SetElem(m, v1)
			vi.SetElem(m, v2)
		} else {
			vj.SetElem(m, 1)
			vi.SetElem(m, 2)
		}
	default: // Unknown
		if !vi.Elem(m).Defined {
			if m == c.opts.K {
				vi.SetElem(m, c.allocUpper(acting, vj.Elem(m).V))
			} else {
				vi.SetElem(m, vj.Elem(m).V+1)
			}
		} else {
			if m == c.opts.K {
				vj.SetElem(m, c.allocLower(acting, vi.Elem(m).V))
			} else {
				vj.SetElem(m, vi.Elem(m).V-1)
			}
		}
	}
	return true
}

// maxDefined returns the largest defined k-th-column value among the two
// vectors, or 0.
func maxDefined(vs ...*core.Vector) int64 {
	var m int64
	for _, v := range vs {
		last := v.Elem(v.K())
		if last.Defined && last.V > m {
			m = last.V
		}
	}
	return m
}

// Step schedules one operation. Safe for concurrent use; each item of a
// multi-item operation is scheduled independently under its own lock set.
func (c *Cluster) Step(op oplog.Op) core.Decision {
	acting := c.homeOfTxn(op.Txn)
	for _, x := range op.Items {
		v, blocker := c.stepItem(acting, op.Txn, op.Kind, x)
		if v == core.Reject {
			return core.Decision{Op: op, Verdict: core.Reject, Blocker: blocker, Item: x}
		}
	}
	return core.Decision{Op: op, Verdict: core.Accept}
}

// stepItem performs the optimistic lock-validate-decide round for one
// (transaction, item) pair.
func (c *Cluster) stepItem(acting, txn int, kind oplog.Kind, x string) (core.Verdict, int) {
	for {
		entry, itemMu := c.itemOf(x)
		// Snapshot the index under its own lock only, then acquire the
		// full sorted lock set and validate the snapshot.
		itemMu.Lock()
		rt, wt := entry.rt, entry.wt
		itemMu.Unlock()
		locks := c.acquire(x, []int{txn, rt, wt})
		if entry.rt != rt || entry.wt != wt {
			// The index moved while we were acquiring: retry with the new
			// holders (optimistic ordered locking).
			locks.release()
			c.lockRetries.Add(1)
			continue
		}
		// Tally cross-site traffic: item entry + each distinct vector.
		c.countAccess(acting, c.homeOfItem(x))
		seen := map[int]bool{}
		for _, t := range []int{txn, rt, wt} {
			if !seen[t] {
				seen[t] = true
				c.countAccess(acting, c.homeOfTxn(t))
			}
		}
		vi := c.vecOf(txn).vec
		vrt, vwt := c.vecOf(rt).vec, c.vecOf(wt).vec
		j, vj := rt, vrt
		if rt != wt && vrt.Less(vwt) {
			j, vj = wt, vwt
		}
		var verdict core.Verdict
		var blocker int
		if c.set(acting, j, txn, vj, vi) {
			if kind == oplog.Read {
				entry.rt = txn
			} else {
				entry.wt = txn
			}
			verdict = core.Accept
		} else if kind == oplog.Read && j == rt && vwt.Less(vi) {
			verdict = core.Accept // line-9 slot-in, RT unchanged
		} else {
			verdict, blocker = core.Reject, j
		}
		locks.release()
		return verdict, blocker
	}
}

// AcceptLog runs a complete log sequentially, returning (true, -1) on
// full acceptance or (false, i) at the first rejected operation.
func (c *Cluster) AcceptLog(l *oplog.Log) (bool, int) {
	for idx, op := range l.Ops {
		if d := c.Step(op); d.Verdict == core.Reject {
			return false, idx
		}
	}
	return true, -1
}

// Abort discards transaction txn's incarnation. With a non-zero blocker
// (the Blocker of the rejecting Decision) the vector is flushed and
// reseeded to the blocker's first element + 1 under its lock — the
// distributed form of the Section III-D-4 starvation fix. The reseeded
// vector dominates the old one, so established relations pointing at the
// transaction survive.
func (c *Cluster) Abort(txn, blocker int) {
	if txn == 0 || blocker == 0 {
		c.markDone(txn)
		return
	}
	eb := c.vecOf(blocker)
	et := c.vecOf(txn)
	// Lock the two vector objects in the predefined order.
	first, second := eb, et
	if lockKeyVec(txn) < lockKeyVec(blocker) {
		first, second = et, eb
	}
	first.mu.Lock()
	second.mu.Lock()
	if b := eb.vec.Elem(1); b.Defined {
		seed := b.V + 1
		if c.opts.K == 1 {
			// Column 1 is the distinct counter column: allocate the seed
			// through the site counters so it stays globally unique.
			seed = c.allocUpper(c.homeOfTxn(txn), b.V)
		}
		et.vec.Reset()
		et.vec.SetElem(1, seed)
	}
	second.mu.Unlock()
	first.mu.Unlock()
}

// Commit marks the transaction finished; its vector is reclaimed by GC
// once no item index references it.
func (c *Cluster) Commit(txn int) {
	c.markDone(txn)
}

// done transactions per site, guarded by the site mutex of the txn's home.
func (c *Cluster) markDone(txn int) {
	if txn == 0 {
		return
	}
	s := c.sites[c.homeOfTxn(txn)]
	s.mu.Lock()
	if s.done == nil {
		s.done = make(map[int]bool)
	}
	s.done[txn] = true
	s.mu.Unlock()
}

// GC reclaims vectors of finished transactions that are no longer the
// most recent read or write timestamp of any item (implementation issue
// (b), distributed). It returns the number of vectors dropped. Callers
// run it periodically; it takes site locks only.
func (c *Cluster) GC() int {
	referenced := map[int]bool{0: true}
	for _, s := range c.sites {
		s.mu.Lock()
		for _, e := range s.items {
			referenced[e.rt] = true
			referenced[e.wt] = true
		}
		s.mu.Unlock()
	}
	dropped := 0
	for _, s := range c.sites {
		s.mu.Lock()
		for txn := range s.done {
			if !referenced[txn] {
				delete(s.vecs, txn)
				delete(s.done, txn)
				dropped++
			}
		}
		s.mu.Unlock()
	}
	return dropped
}

// LiveVectors returns the total number of vectors held across all sites.
func (c *Cluster) LiveVectors() int {
	n := 0
	for _, s := range c.sites {
		s.mu.Lock()
		n += len(s.vecs)
		s.mu.Unlock()
	}
	return n
}

// WTHolder returns the transaction currently recorded as WT(x), 0 if
// none. Runtime adapters use it to close the dirty-read window of
// immediate-mode scheduling.
func (c *Cluster) WTHolder(x string) int {
	entry, mu := c.itemOf(x)
	mu.Lock()
	defer mu.Unlock()
	return entry.wt
}
