// Package dmt implements DMT(k), the decentralized concurrency controller
// of Section V-B: MT(k) run across multiple sites.
//
// Every transaction and every data item has a home site. The timestamp
// vector of a transaction is stored at its home site; the RT(x)/WT(x)
// indices live with the item. A local scheduler processing an operation
// locks the (at most four) objects it touches — the item's index entry and
// the vectors of T_i, RT(x) and WT(x) — in a predefined linear order, so
// no deadlock can occur and no global lock synchronization is needed. The
// k-th vector elements are made globally unique without coordination by
// concatenating the allocating site's number as low-order bits
// (value = counter·S + site); local counters only advance, and an
// allocation is always bumped past the element it must outrank, which is
// the correctness-critical part of the paper's "synchronize the counters
// periodically" remark. SyncCounters implements the periodic
// synchronization itself (fairness under unbalanced load).
//
// Cross-site object accesses are tallied as messages (one request plus one
// reply), giving the message-overhead figures of the DMT(k) discussion.
//
// # Failure model
//
// Every object access is routed through an injectable fault.Transport
// hook (the message counter is one observer of that hook). Sites fail by
// stopping: a crash loses the site's volatile item index and — under
// counter drift — its local counters; the transaction vectors are
// treated as stable storage. Operations that need a crashed or
// unreachable site fail fast with an Unavailable verdict (surfaced as
// sched.ErrUnavailable by the runtime adapter) instead of proceeding on
// stale state. Recovery rebuilds the site's item index by replaying the
// cluster's accepted-operation journal and re-validates the site's
// ucnt/lcnt counters against the surviving sites and every live
// k-th-column element the site ever allocated, hardening the paper's
// "synchronize the counters periodically" remark into an actual
// recovery path.
package dmt

import (
	"fmt"
	"hash/fnv"
	"path"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/oplog"
	"repro/internal/wal"
)

// Options configures a DMT(k) cluster.
type Options struct {
	// K is the timestamp vector size.
	K int
	// Sites is the number of sites (>= 1).
	Sites int
	// HomeOfTxn maps a transaction to its home site (default: txn mod
	// Sites). The virtual transaction 0 lives at site 0.
	HomeOfTxn func(txn int) int
	// HomeOfItem maps an item to its home site (default: FNV hash).
	HomeOfItem func(item string) int
	// Transport, when non-nil, carries every object access; faults it
	// injects make operations fail fast with an Unavailable verdict. If
	// the transport also implements SetHooks(fault.Hooks) — as
	// *fault.Injector does — the cluster wires its crash/recovery
	// handlers so scheduled site events drive the degraded-mode state
	// machine, and its heal handler re-synchronizes the counters so the
	// skew a partition built up is bounded again. Nil models a perfect
	// network.
	Transport fault.Transport
	// Durable, when non-nil, gives every site a durable counter-lease
	// sidecar (wal.CounterLog): allocations are covered by a persisted
	// write-ahead lease, and a recovering site reseeds its ucnt/lcnt
	// from its OWN log — no-reissue no longer depends on reaching the
	// survivors, which is what makes recovery partition-tolerant.
	Durable *DurableOptions
	// Health tunes the failure detector; the zero value uses defaults.
	Health fault.HealthOptions
}

// DurableOptions configures the per-site counter sidecars.
type DurableOptions struct {
	// FS is the sidecar filesystem (wal.OSFS for real disks, wal.MemFS
	// for crash-model tests and simulations).
	FS wal.FS
	// Dir is the root directory; site s logs under Dir/site<s>.
	Dir string
	// LeaseBatch is how many allocations one persisted lease covers
	// (amortizes the fsync; default 64).
	LeaseBatch int64
}

// sidecarDir names one site's durable directory.
func (o *DurableOptions) sidecarDir(sidx int) string {
	return path.Join(o.Dir, fmt.Sprintf("site%d", sidx))
}

func (o *DurableOptions) leaseBatch() int64 {
	if o.LeaseBatch < 1 {
		return 64
	}
	return o.LeaseBatch
}

// itemEntry is the per-item index record stored at the item's home site.
type itemEntry struct {
	rt, wt int
}

// vecEntry is a transaction's vector plus its lock.
type vecEntry struct {
	mu  sync.Mutex
	vec *core.Vector
}

// site holds the locally-stored state of one site. The site's local
// ucnt/lcnt counters live in the cluster's engine.SiteCounters slot.
type site struct {
	mu    sync.Mutex
	vecs  map[int]*vecEntry
	items map[string]*itemEntry
	locks map[string]*sync.Mutex // item index-entry locks
	done  map[int]bool           // finished transactions awaiting GC
	down  bool                   // fail-stopped (degraded mode)

	// inc is the incarnation lock: operations acting as this site hold
	// it shared across their probe-allocate-publish span, and CrashSite
	// holds it exclusively while it wipes the incarnation. Without it a
	// step that passed its availability probes could allocate from the
	// site's counter slot AFTER a drift crash reset it, re-issuing a
	// consumed counter value — an interleaving a real fail-stop crash
	// makes impossible (the crash kills in-flight work at the site).
	inc sync.RWMutex
}

// journalRec is one accepted item-index update, the cluster's stable
// redo record: recovery replays these to rebuild a crashed site's index.
type journalRec struct {
	site int
	item string
	kind oplog.Kind
	txn  int
}

// Cluster is a DMT(k) deployment of several cooperating local schedulers.
// Step may be called concurrently from any number of goroutines.
type Cluster struct {
	opts      Options
	sites     []*site
	counters  *engine.SiteCounters // per-site (counter, site-id) allocation
	transport fault.Transport

	messages    atomic.Int64 // cross-site request/reply messages
	lockRetries atomic.Int64 // optimistic re-lock rounds
	unavailable atomic.Int64 // operations failed fast on a down site
	t0          *vecEntry

	health *fault.Health // per-site failure detector, fed by access outcomes

	smu      sync.Mutex        // guards sidecars (handles swap on crash/recover)
	sidecars []*wal.CounterLog // per-site durable counter leases (Durable only)

	jmu     sync.Mutex
	journal []journalRec

	rmu         sync.Mutex
	recoveredAt map[int]time.Time     // site -> recovery completion, latency pending
	recoveryLat map[int]time.Duration // site -> recovery-to-first-commit latency
}

// NewCluster returns an initialized DMT(k) cluster.
func NewCluster(opts Options) *Cluster {
	if opts.K < 1 {
		panic("dmt: Options.K must be >= 1")
	}
	if opts.Sites < 1 {
		panic("dmt: Options.Sites must be >= 1")
	}
	c := &Cluster{
		opts:        opts,
		counters:    engine.NewSiteCounters(opts.Sites),
		transport:   opts.Transport,
		health:      fault.NewHealth(opts.Sites, opts.Health),
		recoveredAt: make(map[int]time.Time),
		recoveryLat: make(map[int]time.Duration),
	}
	for s := 0; s < opts.Sites; s++ {
		c.sites = append(c.sites, &site{
			vecs:  make(map[int]*vecEntry),
			items: make(map[string]*itemEntry),
			locks: make(map[string]*sync.Mutex),
		})
	}
	t0 := core.NewVector(opts.K)
	c.t0 = &vecEntry{vec: t0}
	c.sites[0].vecs[0] = c.t0
	// TS(0) = <0,*,...,*>: seed via a table trick — element 1 must be 0.
	c.t0.vec = core.VectorOf(seedT0(opts.K)...)
	if opts.Durable != nil {
		c.sidecars = make([]*wal.CounterLog, opts.Sites)
		for s := 0; s < opts.Sites; s++ {
			log, err := wal.OpenCounterLog(opts.Durable.FS, opts.Durable.sidecarDir(s))
			if err != nil {
				panic(fmt.Sprintf("dmt: opening counter sidecar for site %d: %v", s, err))
			}
			c.sidecars[s] = log
			u, l := log.Watermarks()
			c.counters.SetDurable(s, u, l, opts.Durable.leaseBatch(), log.Extend)
		}
	}
	if h, ok := opts.Transport.(interface{ SetHooks(fault.Hooks) }); ok {
		h.SetHooks(fault.Hooks{
			OnCrash:   c.CrashSite,
			OnRecover: c.RecoverSite,
			// A heal re-synchronizes the reachable sites' counters, bounding
			// the skew the partition built up (the paper's "synchronize the
			// counters periodically" at the moment it matters most).
			OnHeal: func(groups [][]int) { c.SyncCounters() },
		})
	}
	return c
}

// Close releases the durable sidecar handles (no-op without Durable).
func (c *Cluster) Close() error {
	c.smu.Lock()
	defer c.smu.Unlock()
	var first error
	for _, log := range c.sidecars {
		if log != nil {
			if err := log.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

func seedT0(k int) []core.Elem {
	elems := make([]core.Elem, k)
	elems[0] = core.Int(0)
	return elems
}

// homeOfTxn resolves the home site of a transaction.
func (c *Cluster) homeOfTxn(txn int) int {
	if txn == 0 {
		return 0
	}
	if c.opts.HomeOfTxn != nil {
		return c.opts.HomeOfTxn(txn)
	}
	return txn % c.opts.Sites
}

// homeOfItem resolves the home site of an item.
func (c *Cluster) homeOfItem(x string) int {
	if c.opts.HomeOfItem != nil {
		return c.opts.HomeOfItem(x)
	}
	h := fnv.New32a()
	h.Write([]byte(x))
	return int(h.Sum32()) % c.opts.Sites
}

// access routes one object access (an object homed at objHome touched
// from the acting site) through the transport hook. The message tally is
// one observer of the hook: a delivered cross-site access costs one
// request plus one reply. A transport fault (site down, message lost)
// returns the error and the access must not touch state.
func (c *Cluster) access(acting, objHome int) error {
	if c.transport != nil {
		if err := c.transport.Send(acting, objHome); err != nil {
			// Feed the failure detector: the failing site (down or behind a
			// cut) accrues suspicion, so best-effort maintenance skips it.
			if s := fault.SiteOf(err); s >= 0 {
				c.health.Observe(s, false)
			}
			return err
		}
	} else if c.siteDown(objHome) {
		c.health.Observe(objHome, false)
		return &fault.Error{Site: objHome, Err: fault.ErrSiteDown}
	}
	c.health.Observe(objHome, true)
	if acting != objHome {
		c.messages.Add(2) // request + reply
	}
	return nil
}

// Health exposes the cluster's failure detector (reports, tests).
func (c *Cluster) Health() *fault.Health { return c.health }

// ProbeSite sends one probe to the site through the transport — it
// advances the injector's logical clock, so pollers (parked commits,
// counter sync) drive scheduled heal/recovery events forward even when
// every worker is waiting. Returns nil if the site answered.
func (c *Cluster) ProbeSite(sidx int) error {
	if sidx < 0 || sidx >= len(c.sites) {
		return &fault.Error{Site: sidx, Err: fault.ErrSiteDown}
	}
	if err := c.access(sidx, sidx); err != nil {
		return err
	}
	if c.siteDown(sidx) {
		c.health.Observe(sidx, false)
		return &fault.Error{Site: sidx, Err: fault.ErrSiteDown}
	}
	return nil
}

// InDegradedWindow reports whether the cluster is currently degraded:
// any site down, or any network partition active. Availability
// experiments measure commit success against attempts made while this
// holds.
func (c *Cluster) InDegradedWindow() bool {
	for i := range c.sites {
		if !c.SiteUp(i) {
			return true
		}
	}
	if p, ok := c.transport.(interface{ Partitioned() bool }); ok && p.Partitioned() {
		return true
	}
	return false
}

// siteDown reads the cluster-local fail-stop flag.
func (c *Cluster) siteDown(sidx int) bool {
	s := c.sites[sidx]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down
}

// SiteUp reports whether a site is operational, consulting both the
// transport (partitions, scheduled events) and the cluster's own
// fail-stop flag (manual CrashSite).
func (c *Cluster) SiteUp(sidx int) bool {
	if sidx < 0 || sidx >= len(c.sites) {
		return false
	}
	if c.transport != nil && !c.transport.SiteUp(sidx) {
		return false
	}
	return !c.siteDown(sidx)
}

// TxnSite resolves the home site of a transaction (exported for runtime
// adapters that must check availability at commit).
func (c *Cluster) TxnSite(txn int) int { return c.homeOfTxn(txn) }

// CrashSite fail-stops a site: its volatile item index is lost (the
// journal is the stable copy) and, with drift, its local counters reset
// as if the site restarted from zeroed volatile state. Operations
// needing the site fail fast with Unavailable until RecoverSite. Wired
// as the transport's OnCrash hook; may also be called directly when no
// transport is configured.
func (c *Cluster) CrashSite(sidx int, drift bool) {
	if sidx < 0 || sidx >= len(c.sites) {
		return
	}
	s := c.sites[sidx]
	// The incarnation write lock waits out every in-flight step acting
	// as this site (each holds the read side across its allocation), so
	// the counter reset below can never interleave with an allocation
	// from the dying incarnation — see site.inc.
	s.inc.Lock()
	defer s.inc.Unlock()
	s.mu.Lock()
	s.down = true
	// Fail-stop: the in-memory index is gone. Entry pointers held by
	// in-flight operations detach harmlessly — every accepted update is
	// also in the journal, which recovery replays.
	s.items = make(map[string]*itemEntry)
	s.mu.Unlock()
	if drift {
		c.counters.Reset(sidx)
	} else {
		// The lease hook's file handle dies with the site; the persisted
		// lease survives on disk and RecoverSite reopens it.
		c.counters.DetachDurable(sidx)
	}
	c.smu.Lock()
	if c.sidecars != nil && c.sidecars[sidx] != nil {
		_ = c.sidecars[sidx].Close()
		c.sidecars[sidx] = nil
	}
	c.smu.Unlock()
	c.health.Observe(sidx, false)
}

// RecoverSite brings a crashed site back: it rebuilds the item index by
// replaying the journal and re-validates the site's counters against the
// surviving sites and against every live k-th-column element this site
// ever allocated, so post-recovery allocations can never collide with a
// pre-crash allocation (the correctness half of the paper's "synchronize
// the counters periodically" remark). Wired as the transport's OnRecover
// hook.
func (c *Cluster) RecoverSite(sidx int) {
	if sidx < 0 || sidx >= len(c.sites) {
		return
	}
	// 1. Replay the journal records of items homed here, in accept order.
	c.jmu.Lock()
	var recs []journalRec
	for _, r := range c.journal {
		if r.site == sidx {
			recs = append(recs, r)
		}
	}
	c.jmu.Unlock()
	s := c.sites[sidx]
	s.mu.Lock()
	s.items = make(map[string]*itemEntry)
	for _, r := range recs {
		e := s.items[r.item]
		if e == nil {
			e = &itemEntry{}
			s.items[r.item] = e
			if s.locks[r.item] == nil {
				s.locks[r.item] = &sync.Mutex{}
			}
		}
		if r.kind == oplog.Read {
			e.rt = r.txn
		} else {
			e.wt = r.txn
		}
	}
	s.mu.Unlock()
	// 2. Reseed from the site's OWN durable lease first: every counter the
	// dead incarnation could have consumed lies below the lease it
	// persisted before consuming, so this step alone guarantees the site
	// re-issues nothing — even if every survivor is unreachable (the
	// partition-tolerant half of recovery).
	if c.opts.Durable != nil {
		if log, err := wal.OpenCounterLog(c.opts.Durable.FS, c.opts.Durable.sidecarDir(sidx)); err == nil {
			c.smu.Lock()
			c.sidecars[sidx] = log
			c.smu.Unlock()
			u, l := log.Watermarks()
			c.counters.SetDurable(sidx, u, l, c.opts.Durable.leaseBatch(), log.Extend)
		}
		// On open failure the site proceeds volatile; the survivor raise
		// below still applies and DurableErr stays clear (no lease).
	}
	// 3. Best-effort re-validation against the population: at least the
	// surviving maxima, and strictly past every live element this site
	// allocated. Under a partition this may see a stale picture — safe,
	// because the lease reseed above already rules out re-issue.
	hiU, hiL := c.counters.MaxExcept(sidx)
	aU, aL := c.allocatedBySite(sidx)
	c.counters.RaiseSite(sidx, max(hiU, aU+1), max(hiL, aL+1))
	s.mu.Lock()
	s.down = false
	s.mu.Unlock()
	// 4. Stamp the recovery for latency reporting.
	c.rmu.Lock()
	c.recoveredAt[sidx] = time.Now()
	c.rmu.Unlock()
	c.health.Observe(sidx, true)
}

// allocatedBySite scans the k-th column of every live vector and returns
// the highest upper and lower counter values decoded from elements this
// site allocated (value = counter·S + site, negated for lower).
func (c *Cluster) allocatedBySite(sidx int) (maxU, maxL int64) {
	n := int64(c.opts.Sites)
	for _, s := range c.sites {
		s.mu.Lock()
		entries := make([]*vecEntry, 0, len(s.vecs))
		for _, e := range s.vecs {
			entries = append(entries, e)
		}
		s.mu.Unlock()
		for _, e := range entries {
			e.mu.Lock()
			last := e.vec.Elem(e.vec.K())
			e.mu.Unlock()
			if !last.Defined {
				continue
			}
			v := last.V
			if v >= 0 {
				if v%n == int64(sidx) && v/n > maxU {
					maxU = v / n
				}
			} else {
				if (-v)%n == int64(sidx) && (-v)/n > maxL {
					maxL = (-v) / n
				}
			}
		}
	}
	return maxU, maxL
}

// logIndexUpdate appends one accepted rt/wt update to the stable journal.
// Called while the item's lock is held, so per-item record order is the
// true accept order.
func (c *Cluster) logIndexUpdate(sidx int, item string, kind oplog.Kind, txn int) {
	c.jmu.Lock()
	c.journal = append(c.journal, journalRec{site: sidx, item: item, kind: kind, txn: txn})
	c.jmu.Unlock()
}

// noteCommit resolves a pending recovery-latency measurement when the
// first post-recovery transaction homed at the site commits.
func (c *Cluster) noteCommit(sidx int) {
	c.rmu.Lock()
	if at, ok := c.recoveredAt[sidx]; ok {
		c.recoveryLat[sidx] = time.Since(at)
		delete(c.recoveredAt, sidx)
	}
	c.rmu.Unlock()
}

// RecoveryLatencies returns, per recovered site, the wall time from
// recovery completion to the first commit of a transaction homed there.
func (c *Cluster) RecoveryLatencies() map[int]time.Duration {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	out := make(map[int]time.Duration, len(c.recoveryLat))
	for s, d := range c.recoveryLat {
		out[s] = d
	}
	return out
}

// UnavailableCount returns how many operations failed fast because a
// site they needed was down or unreachable.
func (c *Cluster) UnavailableCount() int64 { return c.unavailable.Load() }

// vecOf fetches (or creates) the vector entry of txn at its home site.
func (c *Cluster) vecOf(txn int) *vecEntry {
	s := c.sites[c.homeOfTxn(txn)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.vecs[txn]; ok {
		return e
	}
	e := &vecEntry{vec: core.NewVector(c.opts.K)}
	s.vecs[txn] = e
	return e
}

// itemOf fetches (or creates) the index entry and its lock for item x.
func (c *Cluster) itemOf(x string) (*itemEntry, *sync.Mutex) {
	s := c.sites[c.homeOfItem(x)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.items[x]; !ok {
		s.items[x] = &itemEntry{}
		s.locks[x] = &sync.Mutex{}
	}
	return s.items[x], s.locks[x]
}

// Messages returns the number of cross-site messages exchanged so far.
func (c *Cluster) Messages() int64 { return c.messages.Load() }

// LockRetries returns how many optimistic locking rounds had to restart
// because RT(x)/WT(x) changed while the sorted lock set was acquired.
func (c *Cluster) LockRetries() int64 { return c.lockRetries.Load() }

// Vector returns a copy of TS(i).
func (c *Cluster) Vector(i int) *core.Vector {
	e := c.vecOf(i)
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.vec.Clone()
}

// SyncCounters aligns every reachable site's upper and lower counter to
// their maximum — the paper's periodic synchronization for fairness
// under unbalanced load. Both counters only ever advance, so syncing to
// the maximum can never cause a site to re-issue a counter value it (or
// any other site) already consumed; syncing the lower counter *down*
// would do exactly that and break the global uniqueness of the k-th
// column.
//
// The skip set is the failure detector's: each site is probed through
// the transport (one message, advancing the injector clock) and the
// outcome feeds Health; sites that are down, partitioned away, or
// already suspected are neither read nor written, so synchronization
// degrades gracefully instead of blocking on unreachable sites. Crashed
// sites re-validate in RecoverSite; partitioned sites catch up at the
// heal (the OnHeal hook calls this again).
func (c *Cluster) SyncCounters() {
	skip := make([]bool, len(c.sites))
	for i := range c.sites {
		reachable := c.access(0, i) == nil && !c.siteDown(i)
		skip[i] = !reachable || c.health.Skip(i)
	}
	c.counters.Sync(func(i int) bool { return skip[i] })
}

// Counters returns the cluster-wide counter consumption watermarks:
// the maximum lower and upper counter over all sites. Both site
// counters only ever advance (CrashSite resets a site, but its old
// values are re-validated from the survivors by RecoverSite), so a
// durability log can treat the pair as monotone watermarks: restarting
// every site at or above them guarantees no consumed k-th-column value
// is re-issued.
func (c *Cluster) Counters() (lo, hi int64) {
	return c.counters.Watermarks()
}

// RaiseCounters lifts every site's counters to at least (lo, hi) —
// the recovery-side half of the Counters watermark contract. Raise,
// never assign: a site may already be past the watermark.
func (c *Cluster) RaiseCounters(lo, hi int64) {
	c.counters.Raise(lo, hi)
}

// CounterSkew returns max-min of the sites' upper counters, for the
// fairness experiments.
func (c *Cluster) CounterSkew() int64 {
	return c.counters.Skew()
}

// lockKey gives every lockable object a position in the predefined linear
// order: vectors sort before item entries, then by id.
func lockKeyVec(txn int) string      { return fmt.Sprintf("v:%012d", txn) }
func lockKeyItem(item string) string { return "x:" + item }

// lockedObjects is the sorted lock set held while one operation is
// scheduled.
type lockedObjects struct {
	keys   []string
	unlock []func()
}

func (lo *lockedObjects) release() {
	// Unlock in reverse acquisition order.
	for i := len(lo.unlock) - 1; i >= 0; i-- {
		lo.unlock[i]()
	}
}

// acquire locks the item entry and the vectors of the given transactions
// in the predefined linear order.
func (c *Cluster) acquire(x string, txns []int) *lockedObjects {
	type obj struct {
		key  string
		lock func() func()
	}
	var objs []obj
	_, itemMu := c.itemOf(x)
	objs = append(objs, obj{lockKeyItem(x), func() func() {
		itemMu.Lock()
		return itemMu.Unlock
	}})
	seen := map[int]bool{}
	for _, t := range txns {
		if seen[t] {
			continue
		}
		seen[t] = true
		e := c.vecOf(t)
		objs = append(objs, obj{lockKeyVec(t), func() func() {
			e.mu.Lock()
			return e.mu.Unlock
		}})
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].key < objs[j].key })
	lo := &lockedObjects{}
	for _, o := range objs {
		lo.keys = append(lo.keys, o.key)
		lo.unlock = append(lo.unlock, o.lock())
	}
	return lo
}

// set encodes or validates TS(j) < TS(i) under the already-held locks:
// the engine kernel's Set, with site-tagged counters allocated by the
// acting site's SiteCounters slot.
func (c *Cluster) set(acting, j, i int, vj, vi *core.Vector) bool {
	return engine.Dep{
		J: j, I: i, VJ: vj, VI: vi, K: c.opts.K,
		Alloc: c.counters.For(acting),
		Sink:  engine.VectorSink{VJ: vj, VI: vi},
	}.Encode()
}

// Step schedules one operation. Safe for concurrent use; each item of a
// multi-item operation is scheduled independently under its own lock set.
// An Unavailable verdict means a site the operation needed is crashed or
// unreachable: nothing was decided or mutated, and the operation may be
// retried once the site recovers.
func (c *Cluster) Step(op oplog.Op) core.Decision {
	acting := c.homeOfTxn(op.Txn)
	for _, x := range op.Items {
		v, blocker, site := c.stepItem(acting, op.Txn, op.Kind, x)
		switch v {
		case core.Unavailable:
			return core.Decision{Op: op, Verdict: core.Unavailable, Site: site, Item: x}
		case core.Reject:
			return core.Decision{Op: op, Verdict: core.Reject, Blocker: blocker, Item: x}
		}
	}
	return core.Decision{Op: op, Verdict: core.Accept}
}

// stepItem performs the optimistic lock-validate-decide round for one
// (transaction, item) pair. Returns the verdict, the blocker on Reject,
// and the unreachable site on Unavailable. Every transport check runs
// before the first mutation, so a fault leaves no partial state behind.
func (c *Cluster) stepItem(acting, txn int, kind oplog.Kind, x string) (core.Verdict, int, int) {
	for {
		// Fail fast: a crashed site schedules nothing. The check is a
		// probe through the transport, so it advances the injector's
		// logical clock — even a fully-degraded cluster (every live
		// transaction homed at a crashed site) makes progress toward its
		// scheduled recovery instead of livelocking.
		if err := c.access(acting, acting); err != nil {
			c.unavailable.Add(1)
			return core.Unavailable, 0, fault.SiteOf(err)
		}
		entry, itemMu := c.itemOf(x)
		// Snapshot the index under its own lock only, then acquire the
		// full sorted lock set and validate the snapshot.
		itemMu.Lock()
		rt, wt := entry.rt, entry.wt
		itemMu.Unlock()
		locks := c.acquire(x, []int{txn, rt, wt})
		if entry.rt != rt || entry.wt != wt {
			// The index moved while we were acquiring: retry with the new
			// holders (optimistic ordered locking).
			locks.release()
			c.lockRetries.Add(1)
			continue
		}
		// Route every object access through the transport before any
		// mutation: item entry + each distinct vector. A fault releases
		// the locks and reports the unreachable site.
		fail := func(err error) (core.Verdict, int, int) {
			locks.release()
			c.unavailable.Add(1)
			return core.Unavailable, 0, fault.SiteOf(err)
		}
		if err := c.access(acting, c.homeOfItem(x)); err != nil {
			return fail(err)
		}
		seen := map[int]bool{}
		for _, t := range []int{txn, rt, wt} {
			if !seen[t] {
				seen[t] = true
				if err := c.access(acting, c.homeOfTxn(t)); err != nil {
					return fail(err)
				}
			}
		}
		// Incarnation check: hold the acting site's incarnation lock
		// across the decide-allocate-publish span. CrashSite performs its
		// whole wipe (down flag, index, counter reset) under the write
		// side, so either the crash already happened — the down re-check
		// fails and nothing is decided — or it waits until this step's
		// allocation is published. Without this a drift crash could reset
		// the counter slot between the probes above and the allocation
		// inside set(), re-issuing a consumed counter value. Taken after
		// the transport probes: a probe may itself fire the scheduled
		// crash of this site, whose handler takes the write side.
		inc := &c.sites[acting].inc
		inc.RLock()
		if c.siteDown(acting) {
			inc.RUnlock()
			locks.release()
			c.unavailable.Add(1)
			return core.Unavailable, 0, acting
		}
		vi := c.vecOf(txn).vec
		vrt, vwt := c.vecOf(rt).vec, c.vecOf(wt).vec
		j, vj := rt, vrt
		if rt != wt && vrt.Less(vwt) {
			j, vj = wt, vwt
		}
		var verdict core.Verdict
		var blocker int
		if c.set(acting, j, txn, vj, vi) {
			if kind == oplog.Read {
				entry.rt = txn
			} else {
				entry.wt = txn
			}
			c.logIndexUpdate(c.homeOfItem(x), x, kind, txn)
			verdict = core.Accept
		} else if kind == oplog.Read && j == rt && vwt.Less(vi) {
			verdict = core.Accept // line-9 slot-in, RT unchanged
		} else {
			verdict, blocker = core.Reject, j
		}
		inc.RUnlock()
		locks.release()
		return verdict, blocker, 0
	}
}

// AcceptLog runs a complete log sequentially, returning (true, -1) on
// full acceptance or (false, i) at the first operation not accepted.
func (c *Cluster) AcceptLog(l *oplog.Log) (bool, int) {
	for idx, op := range l.Ops {
		if d := c.Step(op); d.Verdict != core.Accept {
			return false, idx
		}
	}
	return true, -1
}

// Abort discards transaction txn's incarnation. With a non-zero blocker
// (the Blocker of the rejecting Decision) the vector is flushed and
// reseeded to the blocker's first element + 1 under its lock — the
// distributed form of the Section III-D-4 starvation fix. The reseeded
// vector dominates the old one, so established relations pointing at the
// transaction survive.
func (c *Cluster) Abort(txn, blocker int) {
	if txn == 0 || blocker == 0 {
		c.markDone(txn)
		return
	}
	eb := c.vecOf(blocker)
	et := c.vecOf(txn)
	// Lock the two vector objects in the predefined order.
	first, second := eb, et
	if lockKeyVec(txn) < lockKeyVec(blocker) {
		first, second = et, eb
	}
	first.mu.Lock()
	second.mu.Lock()
	if b := eb.vec.Elem(1); b.Defined {
		seed := b.V + 1
		if c.opts.K == 1 {
			// Column 1 is the distinct counter column: allocate the seed
			// through the site counters so it stays globally unique. Hold
			// the home site's incarnation read lock across the allocation
			// so a concurrent drift crash cannot reset the slot mid-alloc
			// (same discipline as stepItem). If the home site is already
			// down the reseed is skipped entirely: allocating from a reset
			// slot could re-issue a consumed value, and the starvation fix
			// can wait for a post-recovery abort — the retry fails fast at
			// its first step until then anyway.
			hidx := c.homeOfTxn(txn)
			home := c.sites[hidx]
			home.inc.RLock()
			if c.siteDown(hidx) {
				home.inc.RUnlock()
				second.mu.Unlock()
				first.mu.Unlock()
				return
			}
			seed = c.counters.For(hidx).AllocUpper(b.V)
			home.inc.RUnlock()
		}
		et.vec.Reset()
		et.vec.SetElem(1, seed)
	}
	second.mu.Unlock()
	first.mu.Unlock()
}

// Commit marks the transaction finished; its vector is reclaimed by GC
// once no item index references it.
func (c *Cluster) Commit(txn int) {
	c.markDone(txn)
	if txn != 0 {
		c.noteCommit(c.homeOfTxn(txn))
	}
}

// done transactions per site, guarded by the site mutex of the txn's home.
func (c *Cluster) markDone(txn int) {
	if txn == 0 {
		return
	}
	s := c.sites[c.homeOfTxn(txn)]
	s.mu.Lock()
	if s.done == nil {
		s.done = make(map[int]bool)
	}
	s.done[txn] = true
	s.mu.Unlock()
}

// GC reclaims vectors of finished transactions that are no longer the
// most recent read or write timestamp of any item (implementation issue
// (b), distributed). It returns the number of vectors dropped. Callers
// run it periodically; it takes site locks only.
//
// While a site is down its in-memory index is gone, but recovery will
// rebuild it from the journal — so the sweep conservatively treats every
// transaction in the down site's journal records as referenced, keeping
// the vectors the rebuilt index will point at.
func (c *Cluster) GC() int {
	referenced := map[int]bool{0: true}
	downSites := map[int]bool{}
	for idx, s := range c.sites {
		s.mu.Lock()
		if s.down {
			downSites[idx] = true
		}
		for _, e := range s.items {
			referenced[e.rt] = true
			referenced[e.wt] = true
		}
		s.mu.Unlock()
	}
	if len(downSites) > 0 {
		c.jmu.Lock()
		for _, r := range c.journal {
			if downSites[r.site] {
				referenced[r.txn] = true
			}
		}
		c.jmu.Unlock()
	}
	dropped := 0
	for _, s := range c.sites {
		s.mu.Lock()
		for txn := range s.done {
			if !referenced[txn] {
				delete(s.vecs, txn)
				delete(s.done, txn)
				dropped++
			}
		}
		s.mu.Unlock()
	}
	return dropped
}

// LiveVectors returns the total number of vectors held across all sites.
func (c *Cluster) LiveVectors() int {
	n := 0
	for _, s := range c.sites {
		s.mu.Lock()
		n += len(s.vecs)
		s.mu.Unlock()
	}
	return n
}

// WTHolder returns the transaction currently recorded as WT(x), 0 if
// none. Runtime adapters use it to close the dirty-read window of
// immediate-mode scheduling.
func (c *Cluster) WTHolder(x string) int {
	entry, mu := c.itemOf(x)
	mu.Lock()
	defer mu.Unlock()
	return entry.wt
}
