package dmt

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/oplog"
)

func TestPanicsOnBadOptions(t *testing.T) {
	for _, opts := range []Options{{K: 0, Sites: 1}, {K: 2, Sites: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCluster(%+v) did not panic", opts)
				}
			}()
			NewCluster(opts)
		}()
	}
}

func randomTwoStep(rng *rand.Rand, nTxns, nItems int) *oplog.Log {
	items := []string{"x", "y", "z"}[:nItems]
	type pend struct{ r, w oplog.Op }
	var pends []pend
	for t := 1; t <= nTxns; t++ {
		pends = append(pends, pend{
			oplog.R(t, items[rng.Intn(nItems)]),
			oplog.W(t, items[rng.Intn(nItems)]),
		})
	}
	var ops []oplog.Op
	emitted := make([]int, len(pends))
	for len(ops) < 2*len(pends) {
		i := rng.Intn(len(pends))
		if emitted[i] == 0 {
			ops = append(ops, pends[i].r)
			emitted[i] = 1
		} else if emitted[i] == 1 {
			ops = append(ops, pends[i].w)
			emitted[i] = 2
		}
	}
	return oplog.NewLog(ops...)
}

// With a single site, DMT(k) makes exactly the decisions of MT(k): the
// decentralized machinery reduces to the centralized protocol.
func TestSingleSiteMatchesMTk(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 800; trial++ {
		l := randomTwoStep(rng, 4, 3)
		c := NewCluster(Options{K: 3, Sites: 1})
		s := engine.NewScheduler(engine.Options{K: 3})
		for idx, op := range l.Ops {
			dc := c.Step(op)
			ds := s.Step(op)
			if dc.Verdict != ds.Verdict {
				t.Fatalf("log %v op %d (%v): dmt=%v core=%v", l, idx, op, dc.Verdict, ds.Verdict)
			}
			if dc.Verdict == core.Reject {
				break
			}
		}
	}
}

// Multi-site DMT(k) must still accept only D-serializable prefixes, and
// should agree with centralized MT(k) on the vast majority of logs (the
// site-tagged counters may order k-th elements slightly differently).
func TestMultiSiteAcceptsOnlyDSR(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	agree, total := 0, 0
	for trial := 0; trial < 600; trial++ {
		l := randomTwoStep(rng, 4, 3)
		c := NewCluster(Options{K: 3, Sites: 3})
		n := 0
		for _, op := range l.Ops {
			if c.Step(op).Verdict == core.Reject {
				break
			}
			n++
		}
		if n > 0 && !classify.DSR(l.Prefix(n)) {
			t.Fatalf("non-DSR prefix accepted: %v", l.Prefix(n))
		}
		total++
		if (n == l.Len()) == engine.Accepts(3, l) {
			agree++
		}
	}
	if agree*10 < total*9 {
		t.Fatalf("agreement with MT(k) too low: %d/%d", agree, total)
	}
}

func TestMessageCounting(t *testing.T) {
	// All transactions at site 0, all items at site 1: every operation
	// crosses sites for the item entry and once per remote vector.
	c := NewCluster(Options{
		K: 2, Sites: 2,
		HomeOfTxn:  func(int) int { return 0 },
		HomeOfItem: func(string) int { return 1 },
	})
	if d := c.Step(oplog.R(1, "x")); d.Verdict != core.Accept {
		t.Fatal("R1[x] rejected")
	}
	// One item access (2 msgs); vectors of T1, RT=0, WT=0 all live at
	// site 0 = acting site (0 msgs).
	if got := c.Messages(); got != 2 {
		t.Fatalf("Messages = %d, want 2", got)
	}
	// A fully local deployment exchanges none.
	c2 := NewCluster(Options{
		K: 2, Sites: 2,
		HomeOfTxn:  func(int) int { return 0 },
		HomeOfItem: func(string) int { return 0 },
	})
	c2.Step(oplog.R(1, "x"))
	if got := c2.Messages(); got != 0 {
		t.Fatalf("local Messages = %d, want 0", got)
	}
}

func TestKthElementsGloballyUnique(t *testing.T) {
	// Force many counter allocations across sites and verify all k-th
	// elements are distinct.
	c := NewCluster(Options{K: 1, Sites: 3})
	var logOps []oplog.Op
	for i := 1; i <= 12; i++ {
		logOps = append(logOps, oplog.W(i, "x"))
	}
	seen := map[int64]int{}
	for _, op := range logOps {
		if d := c.Step(op); d.Verdict != core.Accept {
			t.Fatalf("%v rejected", op)
		}
	}
	for i := 1; i <= 12; i++ {
		e := c.Vector(i).Elem(1)
		if !e.Defined {
			t.Fatalf("TS(%d,1) undefined", i)
		}
		if prev, dup := seen[e.V]; dup {
			t.Fatalf("duplicate k-th element %d for T%d and T%d", e.V, prev, i)
		}
		seen[e.V] = i
	}
}

func TestSyncCountersReducesSkew(t *testing.T) {
	c := NewCluster(Options{
		K: 1, Sites: 3,
		HomeOfTxn: func(txn int) int { return 0 }, // unbalanced: site 0 only
	})
	for i := 1; i <= 10; i++ {
		c.Step(oplog.W(i, "x"))
	}
	if c.CounterSkew() == 0 {
		t.Fatal("expected counter skew under unbalanced load")
	}
	c.SyncCounters()
	if got := c.CounterSkew(); got != 0 {
		t.Fatalf("skew after sync = %d", got)
	}
}

// Torture: concurrent transactions over shared items; run with -race.
// Every operation decision must be internally consistent (no panics from
// overwriting defined elements) and committed orderings acyclic.
func TestConcurrentStepTorture(t *testing.T) {
	c := NewCluster(Options{K: 3, Sites: 4})
	const workers = 8
	const txnsPer = 25
	items := []string{"a", "b", "c", "d", "e"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < txnsPer; i++ {
				txn := w*txnsPer + i + 1
				for op := 0; op < 3; op++ {
					item := items[rng.Intn(len(items))]
					var o oplog.Op
					if rng.Intn(2) == 0 {
						o = oplog.R(txn, item)
					} else {
						o = oplog.W(txn, item)
					}
					if d := c.Step(o); d.Verdict == core.Reject {
						break // abandon this transaction
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Spot-check: the established relation over a sample of vectors is
	// antisymmetric.
	for a := 1; a <= 20; a++ {
		for b := a + 1; b <= 20; b++ {
			va, vb := c.Vector(a), c.Vector(b)
			if va.Less(vb) && vb.Less(va) {
				t.Fatalf("antisymmetry violated for T%d, T%d", a, b)
			}
		}
	}
}

func TestLockRetriesCounter(t *testing.T) {
	c := NewCluster(Options{K: 2, Sites: 2})
	c.Step(oplog.R(1, "x"))
	if c.LockRetries() < 0 {
		t.Fatal("negative retries")
	}
}

// The line-9 slot-in path works across sites too.
func TestDistributedReadSlotIn(t *testing.T) {
	c := NewCluster(Options{K: 2, Sites: 2})
	l := oplog.MustParse("R1[x] W2[x] W2[z] R3[x] R4[z] W3[z]")
	if ok, at := c.AcceptLog(l); !ok {
		t.Fatalf("setup rejected at %d", at)
	}
	if d := c.Step(oplog.R(4, "x")); d.Verdict != core.Accept {
		t.Fatalf("slot-in read rejected: %+v", d)
	}
}

func TestAcceptLogReportsIndex(t *testing.T) {
	c := NewCluster(Options{K: 2, Sites: 2})
	// Cycle: must reject at the final op.
	l := oplog.MustParse("R1[x] R2[y] W2[x] W1[y]")
	ok, at := c.AcceptLog(l)
	if ok || at != 3 {
		t.Fatalf("ok=%v at=%d", ok, at)
	}
}

func ExampleCluster_Step() {
	c := NewCluster(Options{K: 2, Sites: 2})
	d := c.Step(oplog.R(1, "x"))
	fmt.Println(d.Verdict)
	// Output: accept
}
