package dmt

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/oplog"
	"repro/internal/wal"
)

// kthValues collects the defined k-th-column element of every listed
// transaction (K=1 clusters: column 1 is the distinct counter column).
func kthValues(t *testing.T, c *Cluster, txns []int) map[int64]int {
	t.Helper()
	seen := map[int64]int{}
	for _, txn := range txns {
		e := c.Vector(txn).Elem(1)
		if !e.Defined {
			continue
		}
		if prev, dup := seen[e.V]; dup {
			t.Fatalf("duplicate k-th element %d for T%d and T%d", e.V, prev, txn)
		}
		seen[e.V] = txn
	}
	return seen
}

// The tentpole boundary test: at every partition, heal, crash and
// recover boundary, the k-th column stays globally unique, counter
// synchronization skips unreachable sites (their counters are neither
// read nor written), and a heal followed by a sync re-bounds the skew
// to zero. Run with -race.
func TestPartitionBoundaryInvariants(t *testing.T) {
	const sites = 4
	inj := fault.New(fault.Plan{Name: "manual"}, sites, 3)
	c := NewCluster(Options{K: 1, Sites: sites, Transport: inj})
	var issued []int
	step := func(txn int, item string) bool {
		d := c.Step(oplog.W(txn, item))
		if d.Verdict == core.Accept {
			issued = append(issued, txn)
			return true
		}
		return false
	}

	// Baseline load: every site allocates (txn n is homed at n mod sites,
	// item "l<n>" lands wherever the hash puts it — acceptance is what
	// matters, uniqueness is checked over whoever got an element).
	txn := 1
	for i := 0; i < 40; i++ {
		step(txn, "a")
		txn += 3 // walk the home sites
	}
	kthValues(t, c, issued)

	// Boundary 1: partition site 1 off. Load continues at the majority
	// side; SyncCounters must skip the cut site entirely.
	inj.Partition([][]int{{1}}, false)
	u1, l1 := c.counters.SiteWatermarks(1)
	for i := 0; i < 20; i++ {
		step(txn, "b")
		txn++
	}
	c.SyncCounters()
	if u, l := c.counters.SiteWatermarks(1); u != u1 || l != l1 {
		t.Fatalf("sync touched the partitioned site: (%d,%d) -> (%d,%d)", u1, l1, u, l)
	}
	kthValues(t, c, issued)

	// Sanity: the sync was not vacuous — reachable sites were aligned.
	{
		var minU, maxU int64 = 1 << 62, -1
		for s := 0; s < sites; s++ {
			if s == 1 {
				continue
			}
			u, _ := c.counters.SiteWatermarks(s)
			if u < minU {
				minU = u
			}
			if u > maxU {
				maxU = u
			}
		}
		if minU != maxU {
			t.Fatalf("reachable sites not aligned after sync: min=%d max=%d", minU, maxU)
		}
	}

	// Boundary 2: heal. A sync over the whole population must re-bound
	// the skew to zero, raise-only (site 1's counters cannot go back).
	inj.Heal(nil)
	c.SyncCounters()
	if skew := c.counters.Skew(); skew != 0 {
		t.Fatalf("skew %d after heal+sync, want 0", skew)
	}
	if u, _ := c.counters.SiteWatermarks(1); u < u1 {
		t.Fatalf("heal+sync moved site 1 backwards: %d < %d", u, u1)
	}
	kthValues(t, c, issued)

	// Boundary 3: crash+drift of site 2 under a fresh partition of site 1
	// (the dead-vs-unreachable matrix). Recovery must re-validate site 2's
	// counters so post-recovery allocations never collide.
	inj.Partition([][]int{{1}}, false)
	c.CrashSite(2, true)
	c.RecoverSite(2)
	for i := 0; i < 20; i++ {
		step(txn, "c")
		txn++
	}
	kthValues(t, c, issued)

	// Boundary 4: final heal; the cluster ends converged and unique.
	inj.Heal(nil)
	c.SyncCounters()
	if skew := c.counters.Skew(); skew != 0 {
		t.Fatalf("final skew %d, want 0", skew)
	}
	if got := kthValues(t, c, issued); len(got) == 0 {
		t.Fatal("no transaction got a k-th element; the uniqueness checks were vacuous")
	}
}

// dropSiteJournal discards the journal records of one site, modeling
// the partitioned-recovery condition the in-memory journal cannot
// otherwise express: the stable journal copy lives with the survivors,
// and a site recovering on the wrong side of a partition cannot read
// it. Whatever the site reseeds from must be its OWN durable state.
func dropSiteJournal(c *Cluster, sidx int) {
	c.jmu.Lock()
	var keep []journalRec
	for _, r := range c.journal {
		if r.site != sidx {
			keep = append(keep, r)
		}
	}
	c.journal = keep
	c.jmu.Unlock()
}

// burnAndForget drives the shared amnesia scenario: an early low site-0
// element lands on item y, site-2 transactions burn through site 2's
// upper counter on item x, everything commits, the site crashes with
// drift while partitioned from the survivors holding its journal copy
// (dropSiteJournal), and a GC sweep runs while it is down — with no
// journal records left to pin them, the high vectors are swept. After
// RecoverSite the only record of the burned values is whatever durable
// state the site kept for itself. Returns the burned k-th-column values
// and the site's watermarks at the last moment before the crash.
func burnAndForget(t *testing.T, c *Cluster) (preVals map[int64]bool, preU, preL int64) {
	t.Helper()
	// Txn 10000 ≡ 0 (mod 4) is homed at site 0: item y's index keeps one
	// LOW element alive, so post-recovery allocations on y are bounded
	// low rather than by x's high history.
	if d := c.Step(oplog.W(10000, "y")); d.Verdict != core.Accept {
		t.Fatalf("low write on y rejected: %+v", d)
	}
	preVals = map[int64]bool{}
	var burned []int
	for txn := 2; txn <= 2+4*30; txn += 4 { // txn ≡ 2 (mod 4): homed at site 2
		if d := c.Step(oplog.W(txn, "x")); d.Verdict != core.Accept {
			continue
		}
		if e := c.Vector(txn).Elem(1); e.Defined {
			preVals[e.V] = true
		}
		burned = append(burned, txn)
	}
	if len(preVals) < 10 {
		t.Fatalf("only %d site-2 allocations; scenario too thin", len(preVals))
	}
	for _, txn := range burned {
		c.Commit(txn)
	}
	c.GC()
	preU, preL = c.counters.SiteWatermarks(2)
	c.CrashSite(2, true) // drift: volatile counters zeroed, index lost
	dropSiteJournal(c, 2)
	// The down window: survivors GC. With neither index nor journal
	// records referencing them, the high vectors are forgotten.
	c.GC()
	c.RecoverSite(2)
	return preVals, preU, preL
}

// Per-site durable counters make no-reissue independent of survivors:
// after burnAndForget no live vector and no survivor counter remembers
// site 2's high allocations — only its own sidecar lease rules out
// re-issuing them. Recovered watermarks must dominate the pre-crash
// durable watermarks, and fresh allocations must never collide.
func TestSidecarRecoveryIndependentOfSurvivors(t *testing.T) {
	const sites = 4
	fs := wal.NewMemFS(7, 0)
	c := NewCluster(Options{
		K: 1, Sites: sites,
		HomeOfItem: func(item string) int { return 2 },
		Durable:    &DurableOptions{FS: fs, Dir: "sidecars"},
	})
	defer c.Close()
	vals, preU, preL := burnAndForget(t, c)

	// Recovered watermarks dominate the pre-crash durable picture.
	if u, l := c.counters.SiteWatermarks(2); u < preU || l < preL {
		t.Fatalf("recovered watermarks (%d,%d) below pre-crash (%d,%d)", u, l, preU, preL)
	}
	// Fresh site-2 allocations on the low-bounded item y cannot collide
	// with the forgotten ones.
	for txn := 1002; txn <= 1002+4*5; txn += 4 {
		if d := c.Step(oplog.W(txn, "y")); d.Verdict != core.Accept {
			t.Fatalf("post-recovery W%d rejected: %+v", txn, d)
		}
		e := c.Vector(txn).Elem(1)
		if !e.Defined {
			t.Fatalf("post-recovery T%d got no element", txn)
		}
		if vals[e.V] {
			t.Fatalf("element %d re-issued after drift recovery", e.V)
		}
	}
}

// The same scenario without the sidecar WOULD re-issue: committed,
// GC'd allocations are invisible to the survivor-based re-validation
// once the crash wipes the index that pinned them, so the
// volatile-only cluster collides. This guards
// TestSidecarRecoveryIndependentOfSurvivors against going vacuous.
func TestSidecarlessDriftWouldReissue(t *testing.T) {
	const sites = 4
	c := NewCluster(Options{
		K: 1, Sites: sites,
		HomeOfItem: func(item string) int { return 2 },
	})
	preVals, _, _ := burnAndForget(t, c)
	reissued := false
	for txn := 1002; txn <= 1002+4*30; txn += 4 {
		if d := c.Step(oplog.W(txn, "y")); d.Verdict != core.Accept {
			continue
		}
		if e := c.Vector(txn).Elem(1); e.Defined && preVals[e.V] {
			reissued = true
			break
		}
	}
	if !reissued {
		t.Fatal("volatile-only drift recovery did not re-issue; the sidecar test proves nothing")
	}
}

// The health detector feeds the sync skip set: a site that stops
// answering is marked non-Up after enough failed contacts, and
// SyncCounters leaves it alone even before the transport itself would
// refuse the probe (Suspect is enough to be skipped).
func TestHealthFeedsSyncSkipSet(t *testing.T) {
	const sites = 4
	inj := fault.New(fault.Plan{Name: "manual"}, sites, 5)
	c := NewCluster(Options{K: 1, Sites: sites, Transport: inj})
	inj.Partition([][]int{{3}}, false)
	// Drive contacts until the detector has seen enough failures.
	for i := 0; i < 16; i++ {
		c.SyncCounters()
	}
	if st := c.Health().State(3); st == fault.Up {
		t.Fatal("detector still reports the cut site Up after repeated failed probes")
	}
	inj.Heal(nil)
	// One successful contact snaps the site back to Up.
	if err := c.ProbeSite(3); err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
	if st := c.Health().State(3); st != fault.Up {
		t.Fatalf("detector reports %v after a successful post-heal probe", st)
	}
	c.SyncCounters()
	if skew := c.counters.Skew(); skew != 0 {
		t.Fatalf("skew %d after heal+sync, want 0", skew)
	}
}
