// Package sgt implements the serialization-graph-tester baseline: the
// scheduler that accepts exactly the D-serializable prefixes (the class
// DSR of Fig. 4, the outer envelope of every MT(k)). It maintains the
// direct-conflict digraph over live and recently committed transactions
// and aborts any operation that would close a cycle. DSR recognition
// costs O(n²q) [16], which is the price MT(k) avoids with its O(nqk)
// vector encoding — the benchmarks make that gap visible.
package sgt

import (
	"fmt"
	"sync"

	"repro/internal/sched"
	"repro/internal/storage"
)

// access records one transaction's accesses to an item.
type access struct {
	txn   int
	wrote bool
	read  bool
}

// SGT is the serialization-graph-tester runtime scheduler.
type SGT struct {
	mu    sync.Mutex
	store *storage.Store
	// history[x] lists, in order, the transactions that accessed x.
	history map[string][]*access
	// edges is the conflict digraph (adjacency sets).
	edges map[int]map[int]bool
	live  map[int]*txnState
	// committedLive tracks committed transactions that still participate
	// in the graph because a cycle through them is possible.
	committed map[int]bool
}

type txnState struct {
	writes map[string]int64
}

// New returns an SGT scheduler over the store.
func New(store *storage.Store) *SGT {
	return &SGT{
		store:     store,
		history:   make(map[string][]*access),
		edges:     make(map[int]map[int]bool),
		live:      make(map[int]*txnState),
		committed: make(map[int]bool),
	}
}

// Name implements sched.Scheduler.
func (s *SGT) Name() string { return "SGT" }

// Begin implements sched.Scheduler.
func (s *SGT) Begin(txn int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.live[txn] = &txnState{writes: make(map[string]int64)}
}

func (s *SGT) state(txn int) *txnState {
	st := s.live[txn]
	if st == nil {
		panic(fmt.Sprintf("sgt: operation on transaction %d without Begin", txn))
	}
	return st
}

// addEdge inserts u -> v.
func (s *SGT) addEdge(u, v int) {
	if u == v {
		return
	}
	if s.edges[u] == nil {
		s.edges[u] = make(map[int]bool)
	}
	s.edges[u][v] = true
}

// reachable reports whether to is reachable from from.
func (s *SGT) reachable(from, to int) bool {
	seen := map[int]bool{}
	stack := []int{from}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t == to {
			return true
		}
		if seen[t] {
			continue
		}
		seen[t] = true
		for n := range s.edges[t] {
			stack = append(stack, n)
		}
	}
	return false
}

// observe registers an access of txn to item and returns an error if the
// new conflict edges would close a cycle.
func (s *SGT) observe(txn int, item string, write bool) error {
	// Collect the new edges first, then test before inserting.
	var preds []int
	for _, a := range s.history[item] {
		if a.txn == txn {
			continue
		}
		if write || a.wrote { // conflicting pair
			preds = append(preds, a.txn)
		}
	}
	for _, p := range preds {
		if s.edges[p] != nil && s.edges[p][txn] {
			continue // already present
		}
		// Adding p -> txn closes a cycle iff p is reachable from txn.
		if s.reachable(txn, p) {
			return sched.Abort(txn, p, "serialization cycle")
		}
		s.addEdge(p, txn)
	}
	// Record the access (merge with an existing record of txn on item).
	for _, a := range s.history[item] {
		if a.txn == txn {
			a.wrote = a.wrote || write
			a.read = a.read || !write
			return nil
		}
	}
	s.history[item] = append(s.history[item], &access{txn: txn, wrote: write, read: !write})
	return nil
}

// Read implements sched.Scheduler. A read over an item with a live
// (uncommitted) writer aborts: the conflict edge would order the reader
// after the writer while the committed store still holds the old value
// (the data publishes at commit), losing the update.
func (s *SGT) Read(txn int, item string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(txn)
	if v, ok := st.writes[item]; ok {
		return v, nil
	}
	for _, a := range s.history[item] {
		if a.wrote && a.txn != txn {
			if _, live := s.live[a.txn]; live {
				return 0, sched.Abort(txn, a.txn, "read over uncommitted writer")
			}
		}
	}
	if err := s.observe(txn, item, false); err != nil {
		return 0, err
	}
	return s.store.Get(item), nil
}

// Write implements sched.Scheduler: the conflict edges are inserted at
// write time; data publishes at commit.
func (s *SGT) Write(txn int, item string, v int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(txn)
	if err := s.observe(txn, item, true); err != nil {
		return err
	}
	st.writes[item] = v
	return nil
}

// Commit implements sched.Scheduler.
func (s *SGT) Commit(txn int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(txn)
	s.store.Apply(st.writes)
	delete(s.live, txn)
	s.committed[txn] = true
	s.gc()
	return nil
}

// Abort implements sched.Scheduler: the transaction's node, edges and
// access records disappear.
func (s *SGT) Abort(txn int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.live, txn)
	s.removeNode(txn)
}

func (s *SGT) removeNode(txn int) {
	delete(s.edges, txn)
	for _, adj := range s.edges {
		delete(adj, txn)
	}
	for item, hist := range s.history {
		keep := hist[:0]
		for _, a := range hist {
			if a.txn != txn {
				keep = append(keep, a)
			}
		}
		s.history[item] = keep
	}
	delete(s.committed, txn)
}

// gc removes committed source nodes: a committed transaction with no
// incoming edges can never be part of a future cycle, so its node and
// history entries are dropped. Iterates to a fixed point.
func (s *SGT) gc() {
	indeg := map[int]int{}
	for _, adj := range s.edges {
		for v := range adj {
			indeg[v]++
		}
	}
	changed := true
	for changed {
		changed = false
		for txn := range s.committed {
			if indeg[txn] == 0 {
				for v := range s.edges[txn] {
					indeg[v]--
				}
				s.removeNode(txn)
				changed = true
			}
		}
	}
}

// GraphSize returns the number of nodes with edges plus live access
// records (gc tests).
func (s *SGT) GraphSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	nodes := map[int]bool{}
	for u, adj := range s.edges {
		nodes[u] = true
		for v := range adj {
			nodes[v] = true
		}
	}
	return len(nodes)
}
