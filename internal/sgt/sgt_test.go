package sgt

import (
	"errors"
	"testing"

	"repro/internal/sched"
	"repro/internal/storage"
)

func TestAcceptsSerializableInterleaving(t *testing.T) {
	s := New(storage.New())
	s.Begin(1)
	s.Begin(2)
	if _, err := s.Read(1, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(2, "y"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, "x", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(2, "y", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsCycle(t *testing.T) {
	s := New(storage.New())
	s.Begin(1)
	s.Begin(2)
	if _, err := s.Read(1, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(2, "y"); err != nil {
		t.Fatal(err)
	}
	// W2[x] creates 1 -> 2; W1[y] would create 2 -> 1: cycle.
	if err := s.Write(2, "x", 1); err != nil {
		t.Fatal(err)
	}
	err := s.Write(1, "y", 1)
	if !errors.Is(err, sched.ErrAbort) {
		t.Fatalf("cycle not detected: %v", err)
	}
}

// SGT accepts the Example 1 ordering that TO(1) rejects: DSR is the
// largest recognizable class. The runtime SGT additionally forbids reads
// over a live writer (no dirty-read window), so T1 commits before the
// readers arrive — the T2 -> T3 late dependency is still the crux.
func TestAcceptsExample1(t *testing.T) {
	s := New(storage.New())
	s.Begin(1)
	if err := s.Write(1, "x", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, "y", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	s.Begin(2)
	s.Begin(3)
	if _, err := s.Read(3, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(2, "y"); err != nil {
		t.Fatal(err)
	}
	// The late dependency T2 -> T3 (W3[y] after R2[y]) is fine for SGT.
	if err := s.Write(3, "y", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
}

// The no-dirty-read rule: reading an item with a live writer aborts.
func TestReadOverLiveWriterAborts(t *testing.T) {
	s := New(storage.New())
	s.Begin(1)
	s.Begin(2)
	if err := s.Write(1, "x", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(2, "x"); err == nil {
		t.Fatal("read over uncommitted writer accepted")
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(2, "x"); err != nil {
		t.Fatalf("read after commit rejected: %v", err)
	}
}

func TestAbortRemovesEdges(t *testing.T) {
	s := New(storage.New())
	s.Begin(1)
	s.Begin(2)
	if _, err := s.Read(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(2, "x", 1); err != nil {
		t.Fatal(err)
	}
	s.Abort(2) // removes 1 -> 2
	s.Begin(2)
	// Now the reverse order is fine: T2 reads y, T1 writes y.
	if _, err := s.Read(2, "y"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, "y", 1); err != nil {
		t.Fatalf("edge from aborted incarnation leaked: %v", err)
	}
}

func TestGCPrunesCommittedSources(t *testing.T) {
	st := storage.New()
	s := New(st)
	for i := 1; i <= 30; i++ {
		s.Begin(i)
		if _, err := s.Read(i, "x"); err != nil {
			t.Fatal(err)
		}
		if err := s.Write(i, "x", int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(i); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.GraphSize(); n != 0 {
		t.Fatalf("graph size after quiescence = %d, want 0", n)
	}
	if st.Get("x") != 30 {
		t.Fatalf("x = %d", st.Get("x"))
	}
}

func TestWritesInvisibleUntilCommit(t *testing.T) {
	st := storage.New()
	s := New(st)
	s.Begin(1)
	if err := s.Write(1, "x", 42); err != nil {
		t.Fatal(err)
	}
	if st.Get("x") != 0 {
		t.Fatal("dirty write visible")
	}
	s.Abort(1)
	if st.Get("x") != 0 {
		t.Fatal("aborted write applied")
	}
}
