package mdts_test

import (
	"fmt"

	mdts "repro"
)

// Example 1 of the paper: the multidimensional protocol accepts a log
// that single-valued timestamp ordering rejects.
func Example() {
	log := mdts.MustParseLog("W1[x] W1[y] R3[x] R2[y] W3[y]")
	fmt.Println("TO(1) accepts:", mdts.Accepts(1, log))
	fmt.Println("TO(2) accepts:", mdts.Accepts(2, log))
	// Output:
	// TO(1) accepts: false
	// TO(2) accepts: true
}

// Driving the scheduler operation by operation and reading the vectors.
func ExampleNewMT() {
	s := mdts.NewMT(mdts.MTOptions{K: 2})
	for _, op := range mdts.MustParseLog("W1[x] W1[y] R3[x] R2[y] W3[y]").Ops {
		s.Step(op)
	}
	fmt.Println("TS(2) =", s.Vector(2))
	fmt.Println("TS(3) =", s.Vector(3))
	fmt.Println("order =", s.SerialOrder([]int{1, 2, 3}))
	// Output:
	// TS(2) = <2,1>
	// TS(3) = <2,2>
	// order = [1 2 3]
}

// The Fig. 4 class recognizers.
func ExampleDSR() {
	liveCycle := mdts.MustParseLog("R1[x] R2[y] W2[x] W1[y]")
	deadCycle := mdts.MustParseLog("R1[x] R2[y] W2[x] W1[y] R3[z] W3[x,y]")
	fmt.Println(mdts.DSR(liveCycle), mdts.SR(liveCycle))
	fmt.Println(mdts.DSR(deadCycle), mdts.SR(deadCycle))
	// Output:
	// false false
	// false true
}

// The composite protocol accepts the union of the subprotocol classes.
func ExampleNewComposite() {
	s := mdts.NewComposite(mdts.CompositeOptions{K: 2})
	ok, _ := s.AcceptLog(mdts.MustParseLog("W1[x] W1[y] R3[x] R2[y] W3[y]"))
	fmt.Println("accepted:", ok, "alive:", s.Alive())
	// Output:
	// accepted: true alive: [2]
}

// The shared-table composite (Fig. 9/10) gives the same verdict in O(k).
func ExampleNewSharedComposite() {
	s := mdts.NewSharedComposite(2)
	ok, _ := s.AcceptLog(mdts.MustParseLog("W1[x] W1[y] R3[x] R2[y] W3[y]"))
	fmt.Println("accepted:", ok, "alive:", s.Alive())
	// Output:
	// accepted: true alive: [2]
}

// Nested transactions: Example 4's grouping with group antisymmetry.
func ExampleNewNested2() {
	s := mdts.NewNested2(2, 2, map[int]int{1: 1, 2: 1, 3: 2})
	ok, _ := s.AcceptLog(mdts.MustParseLog("R1[x] R2[y] W2[x] R3[x]"))
	fmt.Println("accepted:", ok)
	fmt.Println("GS(1) =", s.UnitVector(1, 1), "GS(2) =", s.UnitVector(1, 2))
	// Output:
	// accepted: true
	// GS(1) = <1,*> GS(2) = <2,*>
}

// The decentralized protocol across simulated sites.
func ExampleNewDMT() {
	c := mdts.NewDMT(mdts.DMTOptions{K: 2, Sites: 3})
	ok, _ := c.AcceptLog(mdts.MustParseLog("R1[x] W1[x] R2[x] W2[x]"))
	fmt.Println("accepted:", ok)
	// Output:
	// accepted: true
}

// Running a workload through the runtime and checking the invariant.
func ExampleRunSim() {
	accounts := []string{"a", "b"}
	rep := mdts.RunSim(mdts.SimConfig{
		NewScheduler: func(st *mdts.Store) mdts.RuntimeScheduler {
			return mdts.NewMTRuntime(st, mdts.DefaultMTOptions(4), true)
		},
		Specs:   mdts.Transfers(10, accounts, 1, 5),
		Workers: 2,
		Initial: map[string]int64{"a": 50, "b": 50},
	})
	fmt.Println("committed:", rep.Committed, "total:", rep.Store.Sum(accounts))
	// Output:
	// committed: 10 total: 100
}

// The parallel vector comparison of Section III-E.
func ExampleCompareParallel() {
	u := vector(1, 3, 2, 2)
	v := vector(1, 3, 5, 2)
	r := mdts.CompareParallel(u, v)
	fmt.Printf("%s at position %d in %d parallel steps\n", r.Rel, r.Pos, r.ParallelSteps)
	// Output:
	// < at position 3 in 6 parallel steps
}

// vector builds a fully defined vector through the public API (unknown
// transactions have all-undefined vectors).
func vector(vals ...int64) *mdts.Vector {
	s := mdts.NewMT(mdts.MTOptions{K: len(vals)})
	v := s.Vector(999)
	for i, val := range vals {
		v.SetElem(i+1, val)
	}
	return v
}
